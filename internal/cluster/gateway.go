package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// GatewayOptions configures a routing gateway.
type GatewayOptions struct {
	// Name identifies this gateway in hello_ack ServerIDs and the Via
	// metadata stamped on forwarded envelopes. Default "wiscape-gateway".
	Name string

	// TaskInterval is the cadence advertised to agents in hello_ack; it
	// should match the shard coordinators'. Default 5 minutes.
	TaskInterval time.Duration

	// DialTimeout bounds one upstream dial. Default 2s.
	DialTimeout time.Duration

	// RequestTimeout bounds one upstream round trip (send + reply).
	// Default 5s — a down shard costs a bounded error, never a hung agent.
	RequestTimeout time.Duration

	// RetryAttempts is how many times one upstream request is retried on a
	// fresh connection (with jittered exponential backoff) before the
	// shard is declared unavailable for that request. Default 1.
	RetryAttempts int

	// RetryBackoff shapes the inter-retry delays. The zero value uses a
	// gateway-appropriate fast schedule (25ms base, 500ms cap).
	RetryBackoff rng.Backoff

	// FailureThreshold consecutive upstream failures trip a shard's
	// circuit breaker open. Default 3.
	FailureThreshold int

	// BreakCooldown is how long a tripped breaker rejects traffic before
	// admitting a trial request. Default 5s.
	BreakCooldown time.Duration

	// RecheckInterval is the cadence of the background probe that redials
	// unhealthy shards (live re-check). Zero means 2s; negative disables.
	RecheckInterval time.Duration

	// IdleTimeout drops agent connections with no traffic for this long,
	// so dead clients cannot pin gateway goroutines. Zero disables.
	IdleTimeout time.Duration

	// ReadyQuorum is the healthy-shard count required for /readyz to
	// report ready. Zero means majority (len(shards)/2 + 1).
	ReadyQuorum int

	// Seed drives the deterministic retry jitter.
	Seed uint64

	// Telemetry receives gateway and wire metrics; nil disables
	// instrumentation (unless OpsAddr forces a private registry).
	Telemetry *telemetry.Registry

	// OpsAddr, when non-empty, serves the ops HTTP plane (/metrics,
	// /healthz, /readyz reflecting shard quorum, pprof, /api/v1/shards).
	OpsAddr string

	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (o *GatewayOptions) fill() {
	if o.Name == "" {
		o.Name = "wiscape-gateway"
	}
	if o.TaskInterval <= 0 {
		o.TaskInterval = 5 * time.Minute
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.RetryAttempts < 0 {
		o.RetryAttempts = 0
	} else if o.RetryAttempts == 0 {
		o.RetryAttempts = 1
	}
	if o.RetryBackoff == (rng.Backoff{}) {
		o.RetryBackoff = rng.Backoff{Base: 25 * time.Millisecond, Max: 500 * time.Millisecond}
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.BreakCooldown <= 0 {
		o.BreakCooldown = 5 * time.Second
	}
	if o.RecheckInterval == 0 {
		o.RecheckInterval = 2 * time.Second
	}
	if o.Telemetry == nil && o.OpsAddr != "" {
		o.Telemetry = telemetry.NewRegistry()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Gateway is a running routing front end: it accepts ordinary agent
// connections speaking internal/wire, routes location-keyed reports to the
// owning shard, fans operator queries out across shards, and degrades to
// explicit "shard unavailable" errors when a region is down.
type Gateway struct {
	reg  *Registry
	opts GatewayOptions
	ln   net.Listener
	met  *gatewayMetrics
	ops  *telemetry.OpsServer

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	sessionSeq atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// ServeGateway starts a gateway on addr routing to the shards in reg.
func ServeGateway(reg *Registry, addr string, opts GatewayOptions) (*Gateway, error) {
	opts.fill()
	if opts.ReadyQuorum <= 0 {
		opts.ReadyQuorum = len(reg.Shards())/2 + 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: gateway listen %s: %w", addr, err)
	}
	g := &Gateway{
		reg:   reg,
		opts:  opts,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
	}
	g.met = newGatewayMetrics(opts.Telemetry, reg.Shards(), reg.HealthyCount)
	if opts.OpsAddr != "" {
		ops, err := telemetry.NewOpsServer(opts.OpsAddr, telemetry.OpsOptions{
			Registry: opts.Telemetry,
			Status:   g.readyStatus,
			Logf:     opts.Logf,
		})
		if err != nil {
			_ = ln.Close()
			return nil, fmt.Errorf("cluster: %w", err)
		}
		g.ops = ops
		ops.HandleFunc("GET /api/v1/shards", g.serveShards)
		ops.HandleFunc("POST /api/v1/shards/{shard}/promote", g.servePromote)
		opts.Logf("gateway: ops plane listening on %s", ops.Addr())
	}
	g.wg.Add(1)
	go g.acceptLoop()
	if opts.RecheckInterval > 0 {
		g.wg.Add(1)
		go g.recheckLoop()
	}
	return g, nil
}

// Addr returns the agent-facing listen address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// OpsAddr returns the ops HTTP plane's bound address, "" when disabled.
func (g *Gateway) OpsAddr() string { return g.ops.Addr() }

// Registry returns the gateway's shard registry.
func (g *Gateway) Registry() *Registry { return g.reg }

// readyStatus backs /readyz: listening, not closing, and at least
// ReadyQuorum shards serving. A shard counts toward quorum when its breaker
// is closed, or — degraded — when its primary is down but a standby
// answered the last status poll and promotion is imminent; the detail names
// those regions so probes can tell "ok" from "degraded but serving".
func (g *Gateway) readyStatus() (bool, string) {
	g.mu.Lock()
	closed := g.closed
	g.mu.Unlock()
	if closed {
		return false, "shutting down"
	}
	healthy := 0
	var degraded []string
	for _, s := range g.reg.Shards() {
		switch {
		case s.Healthy():
			healthy++
		case s.StandbyUp():
			degraded = append(degraded, s.Name())
		}
	}
	if healthy >= g.opts.ReadyQuorum {
		return true, "ok"
	}
	if healthy+len(degraded) >= g.opts.ReadyQuorum {
		return true, fmt.Sprintf("degraded: primary-less but replica-served: %s", strings.Join(degraded, ", "))
	}
	return false, fmt.Sprintf("not ready: %d/%d shards serving (quorum %d)",
		healthy+len(degraded), len(g.reg.Shards()), g.opts.ReadyQuorum)
}

// serveShards backs GET /api/v1/shards: the live per-shard route table,
// enriched with each endpoint's replication status (role, lag, LSNs) from a
// live poll bounded by the gateway's request timeout.
func (g *Gateway) serveShards(w http.ResponseWriter, r *http.Request) {
	type endpointRow struct {
		Addr       string `json:"addr"`
		Active     bool   `json:"active"`
		Reachable  bool   `json:"reachable"`
		Role       string `json:"role,omitempty"`
		ServerID   string `json:"server_id,omitempty"`
		Epoch      uint64 `json:"epoch,omitempty"`
		LastLSN    uint64 `json:"last_lsn,omitempty"`
		AppliedLSN uint64 `json:"applied_lsn,omitempty"`
		Lag        uint64 `json:"replication_lag,omitempty"`
	}
	type row struct {
		Name      string          `json:"name"`
		Addr      string          `json:"addr"`
		Box       geo.BoundingBox `json:"box"`
		Healthy   bool            `json:"healthy"`
		Breaker   string          `json:"breaker"`
		Epoch     uint64          `json:"routing_epoch"`
		StandbyUp bool            `json:"standby_up"`
		Endpoints []endpointRow   `json:"endpoints"`
	}
	rows := make([]row, 0, len(g.reg.Shards()))
	for _, s := range g.reg.Shards() {
		active := s.Addr()
		eps := make([]endpointRow, 0, len(s.Endpoints()))
		for _, ep := range s.Endpoints() {
			er := endpointRow{Addr: ep, Active: ep == active}
			if st, err := g.queryStatus(ep); err == nil {
				er.Reachable = true
				er.Role = st.Role
				er.ServerID = st.ServerID
				er.Epoch = st.Epoch
				er.LastLSN = st.LastLSN
				er.AppliedLSN = st.AppliedLSN
				er.Lag = st.LagRecords
			}
			eps = append(eps, er)
		}
		rows = append(rows, row{
			Name:      s.Name(),
			Addr:      active,
			Box:       s.Box(),
			Healthy:   s.Healthy(),
			Breaker:   s.BreakerState(),
			Epoch:     s.Epoch(),
			StandbyUp: s.StandbyUp(),
			Endpoints: eps,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"gateway": g.opts.Name,
		"quorum":  g.opts.ReadyQuorum,
		"shards":  rows,
	})
}

// servePromote backs POST /api/v1/shards/{shard}/promote?endpoint=ADDR: the
// operator's planned-failover lever, mutating the live route table through
// the same epoch-guarded path breaker-driven promotion uses.
func (g *Gateway) servePromote(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("shard")
	endpoint := r.URL.Query().Get("endpoint")
	if endpoint == "" {
		http.Error(w, "missing ?endpoint=HOST:PORT", http.StatusBadRequest)
		return
	}
	if err := g.PromoteShard(name, endpoint); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	var sh *Shard
	for _, s := range g.reg.Shards() {
		if s.Name() == name {
			sh = s
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"shard": name,
		"addr":  sh.Addr(),
		"epoch": sh.Epoch(),
	})
}

// Close stops accepting, severs every agent connection, and drains the ops
// plane. Idempotent.
func (g *Gateway) Close() error {
	g.stopOnce.Do(func() { close(g.stop) })
	// Snapshot under the lock, sever after releasing it: Close on a
	// net.Conn can block, and lockio forbids holding g.mu across it.
	g.mu.Lock()
	g.closed = true
	conns := make([]net.Conn, 0, len(g.conns))
	for nc := range g.conns {
		conns = append(conns, nc)
	}
	g.mu.Unlock()
	for _, nc := range conns {
		_ = nc.Close()
	}
	err := g.ln.Close()
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}
	g.wg.Wait()
	return errors.Join(err, g.ops.Close())
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		nc, err := g.ln.Accept()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			g.opts.Logf("gateway: accept: %v", err)
			continue
		}
		g.wg.Add(1)
		go g.handle(nc)
	}
}

func (g *Gateway) recheckLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.opts.RecheckInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.reg.recheck(g.opts.DialTimeout)
			for _, s := range g.reg.Shards() {
				g.reconcileShard(s)
				g.met.shard(s.Name()).setHealth(s.Healthy())
			}
		case <-g.stop:
			return
		}
	}
}

// session is the routing state of one inbound agent connection: the
// remembered hello (replayed to each shard on first contact) and one lazy
// upstream connection per shard endpoint. The cache is keyed by endpoint
// address, not shard name, so a promotion that rewrites the route table
// invalidates the cache naturally: the next forward resolves the shard's
// new active address, misses, and dials the new primary.
type session struct {
	hello    *wire.Hello
	upstream map[string]*wire.Conn
	r        *rng.Rand
}

func (g *Gateway) newSession() *session {
	return &session{
		upstream: make(map[string]*wire.Conn),
		r:        rng.NewNamed(g.opts.Seed, fmt.Sprintf("gateway-session-%d", g.sessionSeq.Add(1))),
	}
}

func (sess *session) closeUpstream() {
	for _, c := range sess.upstream {
		_ = c.Close()
	}
}

// handle runs one agent connection's request/response loop, mirroring the
// coordinator's: every request gets exactly one reply; malformed requests
// get an error reply and terminate the connection; an unavailable shard
// gets an error reply but keeps the connection (the region may recover).
func (g *Gateway) handle(nc net.Conn) {
	defer g.wg.Done()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		_ = nc.Close()
		return
	}
	g.conns[nc] = struct{}{}
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.conns, nc)
		g.mu.Unlock()
	}()
	if g.met != nil {
		g.met.conns.Inc()
	}
	c := wire.NewConn(nc).Instrument(g.met.wireMetrics())
	defer c.Close()
	sess := g.newSession()
	defer sess.closeUpstream()
	for {
		if g.opts.IdleTimeout > 0 {
			_ = nc.SetReadDeadline(time.Now().Add(g.opts.IdleTimeout))
		}
		req, err := c.Recv()
		if err != nil {
			switch {
			case errors.Is(err, wire.ErrMessageTooLarge):
				if g.met != nil {
					g.met.protoErrors.Inc()
				}
				//lint:ignore errdrop best-effort reply on a connection already failing
				_ = c.Send(errEnvelope("message too large"))
			case errors.Is(err, os.ErrDeadlineExceeded):
				if g.met != nil {
					g.met.idleTimeouts.Inc()
				}
			}
			return
		}
		t0 := time.Now()
		reply, fatal := g.dispatch(sess, req)
		if g.met != nil {
			g.met.routeSec.Observe(time.Since(t0).Seconds())
			if reply.Type == wire.TypeError {
				g.met.protoErrors.Inc()
			}
		}
		if err := c.Send(reply); err != nil {
			return
		}
		if fatal {
			return
		}
	}
}

func errEnvelope(msg string) wire.Envelope {
	return wire.Envelope{Type: wire.TypeError, Error: &wire.ErrorMsg{Message: msg}}
}

// dispatch routes one request. fatal=true closes the agent connection
// after replying (malformed traffic only — degraded shards are not the
// agent's fault).
func (g *Gateway) dispatch(sess *session, req wire.Envelope) (reply wire.Envelope, fatal bool) {
	switch req.Type {
	case wire.TypeHello:
		if req.Hello == nil || req.Hello.ClientID == "" {
			return errEnvelope("hello requires a client id"), true
		}
		// Remember the hello; it is replayed to each shard the session
		// first touches, so shards see the same registration they would on
		// a direct connection. The ack is answered locally — agents must
		// not block on any shard just to say hello.
		h := *req.Hello
		sess.hello = &h
		return wire.Envelope{Type: wire.TypeHelloAck, HelloAck: &wire.HelloAck{
			ServerID:        g.opts.Name,
			TaskIntervalSec: g.opts.TaskInterval.Seconds(),
		}}, false

	case wire.TypeZoneReport:
		zr := req.ZoneReport
		if zr == nil || zr.ClientID == "" {
			return errEnvelope("zone report requires a client id"), true
		}
		sh, ok := g.reg.ShardFor(zr.Loc)
		if !ok {
			if g.met != nil {
				g.met.unroutable.Inc()
			}
			return errEnvelope(fmt.Sprintf("no shard covers location %s", zr.Loc)), false
		}
		g.met.shard(sh.Name()).markRouted()
		up, err := g.forward(sess, sh, req)
		if err != nil {
			return errEnvelope(fmt.Sprintf("shard %s unavailable: %v", sh.Name(), err)), false
		}
		if up.Type != wire.TypeTaskList {
			return errEnvelope(fmt.Sprintf("shard %s: unexpected reply %q", sh.Name(), up.Type)), false
		}
		return up, false

	case wire.TypeSampleReport:
		sr := req.SampleReport
		if sr == nil {
			return errEnvelope("empty sample report"), true
		}
		return g.routeSamples(sess, sr), false

	case wire.TypeEstimateRequest:
		if req.EstimateRequest == nil {
			return errEnvelope("empty estimate request"), true
		}
		return g.fanoutEstimate(sess, req), false

	case wire.TypeZoneListRequest:
		if req.ZoneListRequest == nil {
			return errEnvelope("empty zone list request"), true
		}
		return g.fanoutZoneList(sess, req), false

	default:
		return errEnvelope(fmt.Sprintf("unexpected message type %q", req.Type)), true
	}
}

// routeSamples splits one sample report by owning shard and forwards each
// group. Samples whose shard is down (or that no shard covers) are dropped
// and counted; the agent still gets an ack for what landed, so one dead
// region never poisons a whole upload.
func (g *Gateway) routeSamples(sess *session, sr *wire.SampleReport) wire.Envelope {
	groups := make(map[*Shard][]trace.Sample)
	var order []*Shard // deterministic forwarding order
	unroutable := 0
	for _, smp := range sr.Samples {
		sh, ok := g.reg.ShardFor(smp.Loc)
		if !ok {
			unroutable++
			continue
		}
		if _, seen := groups[sh]; !seen {
			order = append(order, sh)
		}
		groups[sh] = append(groups[sh], smp)
	}
	if g.met != nil && unroutable > 0 {
		g.met.unroutable.Add(float64(unroutable))
		g.met.droppedSmps.Add(float64(unroutable))
	}
	accepted := 0
	failed := 0
	var lastErr error
	for _, sh := range order {
		smps := groups[sh]
		g.met.shard(sh.Name()).markRouted()
		up, err := g.forward(sess, sh, wire.Envelope{Type: wire.TypeSampleReport, SampleReport: &wire.SampleReport{
			ClientID: sr.ClientID,
			Samples:  smps,
		}})
		if err != nil || up.Type != wire.TypeSampleAck {
			if err == nil {
				err = fmt.Errorf("unexpected reply %q", up.Type)
			}
			lastErr = fmt.Errorf("shard %s: %w", sh.Name(), err)
			failed += len(smps)
			if g.met != nil {
				g.met.droppedSmps.Add(float64(len(smps)))
			}
			continue
		}
		accepted += up.SampleAck.Accepted
	}
	if accepted == 0 && failed > 0 {
		return errEnvelope(fmt.Sprintf("all shards unavailable for report: %v", lastErr))
	}
	return wire.Envelope{Type: wire.TypeSampleAck, SampleAck: &wire.SampleAck{Accepted: accepted}}
}

// fanoutEstimate queries every shard and merges the found replies. Zone
// IDs are shard-grid-relative, so two shards can both publish the queried
// ID; when more than one does, their serialized window sketches are merged
// (digest + moments — order-independent within the sketch's rank-error
// tolerance) and the reply is synthesized from the merged distribution
// instead of averaging point estimates. A reply without a usable sketch
// falls back to the old rule: first found (registration order) wins.
// Unavailable shards are skipped: a degraded region degrades its own
// answers only.
func (g *Gateway) fanoutEstimate(sess *session, req wire.Envelope) wire.Envelope {
	var found []*wire.EstimateReply
	for _, sh := range g.reg.Shards() {
		up, err := g.forward(sess, sh, req)
		if err != nil {
			continue
		}
		if up.Type == wire.TypeEstimateReply && up.EstimateReply.Found {
			found = append(found, up.EstimateReply)
		}
	}
	if len(found) == 0 {
		return wire.Envelope{Type: wire.TypeEstimateReply, EstimateReply: &wire.EstimateReply{Found: false}}
	}
	if len(found) == 1 {
		return wire.Envelope{Type: wire.TypeEstimateReply, EstimateReply: found[0]}
	}
	merged := mergeEstimates(found)
	if merged == nil {
		// At least one reply lacked a decodable sketch; preserve the
		// pre-sketch behavior rather than mixing incomparable summaries.
		return wire.Envelope{Type: wire.TypeEstimateReply, EstimateReply: found[0]}
	}
	if g.met != nil {
		g.met.estimateMerges.Inc()
	}
	return wire.Envelope{Type: wire.TypeEstimateReply, EstimateReply: merged}
}

// mergeEstimates folds multi-shard estimate replies into one via their
// window sketches. Returns nil unless every reply carries a valid sketch.
func mergeEstimates(found []*wire.EstimateReply) *wire.EstimateReply {
	sketches := make([]*sketch.EpochSketch, 0, len(found))
	for _, r := range found {
		if len(r.Sketch) == 0 {
			return nil
		}
		es, err := sketch.UnmarshalEpochSketch(r.Sketch)
		if err != nil {
			return nil
		}
		sketches = append(sketches, es)
	}
	acc := sketches[0]
	for _, es := range sketches[1:] {
		acc.Merge(es)
	}
	rec := core.Record{
		Key:       found[0].Record.Key,
		MeanValue: acc.Mean(),
		StdDev:    acc.StdDev(),
		Samples:   acc.Count(),
		P50:       acc.Quantile(0.50),
		P90:       acc.Quantile(0.90),
		P99:       acc.Quantile(0.99),
	}
	for _, r := range found {
		if r.Record.UpdatedAt.After(rec.UpdatedAt) {
			rec.UpdatedAt = r.Record.UpdatedAt
		}
	}
	return &wire.EstimateReply{Found: true, Record: rec, Sketch: acc.MarshalBinary()}
}

// fanoutZoneList merges every reachable shard's records into one reply,
// ordered deterministically by (zone, network, metric).
func (g *Gateway) fanoutZoneList(sess *session, req wire.Envelope) wire.Envelope {
	var records []core.Record
	for _, sh := range g.reg.Shards() {
		up, err := g.forward(sess, sh, req)
		if err != nil || up.Type != wire.TypeZoneListReply {
			continue
		}
		records = append(records, up.ZoneListReply.Records...)
	}
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i].Key, records[j].Key
		if a.Zone != b.Zone {
			if a.Zone.X != b.Zone.X {
				return a.Zone.X < b.Zone.X
			}
			return a.Zone.Y < b.Zone.Y
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.Metric < b.Metric
	})
	return wire.Envelope{Type: wire.TypeZoneListReply, ZoneListReply: &wire.ZoneListReply{Records: records}}
}

// forward sends one request to sh over the session's cached upstream
// connection (dialing and replaying the hello if needed), bounded by the
// request timeout and retried on a fresh connection with jittered backoff.
// Failures feed the shard's circuit breaker; an open breaker fails fast.
func (g *Gateway) forward(sess *session, sh *Shard, req wire.Envelope) (wire.Envelope, error) {
	req.Via = &wire.Via{Gateway: g.opts.Name, Shard: sh.Name()}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !sh.allow(time.Now()) {
			if lastErr != nil {
				return wire.Envelope{}, fmt.Errorf("circuit open: %w", lastErr)
			}
			return wire.Envelope{}, errors.New("circuit open")
		}
		reply, err := g.tryForward(sess, sh, req)
		if err == nil {
			sh.recordSuccess()
			g.met.shard(sh.Name()).markForwarded()
			return reply, nil
		}
		lastErr = err
		if opened := sh.recordFailure(time.Now(), g.opts.FailureThreshold, g.opts.BreakCooldown); opened {
			// Breaker edge: the active endpoint just went from suspect to
			// dead. Start a promotion attempt in the background; this
			// request still fails, but the route is rewritten within the
			// breaker window so the agent's retry lands on the new primary.
			g.kickFailover(sh)
		}
		g.met.shard(sh.Name()).markFailed(sh.Healthy())
		if attempt >= g.opts.RetryAttempts {
			return wire.Envelope{}, lastErr
		}
		time.Sleep(g.opts.RetryBackoff.Delay(attempt, sess.r))
	}
}

// tryForward performs one upstream round trip against the shard's current
// active endpoint, discarding the cached connection on any failure so the
// next attempt redials (possibly a different endpoint after a promotion).
func (g *Gateway) tryForward(sess *session, sh *Shard, req wire.Envelope) (wire.Envelope, error) {
	addr := sh.Addr()
	up, err := g.upstream(sess, sh, addr)
	if err != nil {
		return wire.Envelope{}, err
	}
	_ = up.SetDeadline(time.Now().Add(g.opts.RequestTimeout))
	reply, err := up.Request(req)
	if err != nil {
		g.dropUpstream(sess, addr)
		return wire.Envelope{}, err
	}
	_ = up.SetDeadline(time.Time{})
	return reply, nil
}

// upstream returns the session's connection to addr (sh's active endpoint
// as resolved by the caller), dialing — and replaying the session hello, so
// the shard registers the client exactly as a direct connection would — on
// first use.
func (g *Gateway) upstream(sess *session, sh *Shard, addr string) (*wire.Conn, error) {
	if c, ok := sess.upstream[addr]; ok {
		return c, nil
	}
	nc, err := net.DialTimeout("tcp", addr, g.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial: %w", err)
	}
	c := wire.NewConn(nc).Instrument(g.met.wireMetrics())
	if sess.hello != nil {
		_ = c.SetDeadline(time.Now().Add(g.opts.RequestTimeout))
		ack, err := c.Request(wire.Envelope{
			Type:  wire.TypeHello,
			Via:   &wire.Via{Gateway: g.opts.Name, Shard: sh.Name()},
			Hello: sess.hello,
		})
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("hello replay: %w", err)
		}
		if ack.Type != wire.TypeHelloAck {
			_ = c.Close()
			return nil, fmt.Errorf("hello replay: unexpected reply %q", ack.Type)
		}
		_ = c.SetDeadline(time.Time{})
	}
	sess.upstream[addr] = c
	return c, nil
}

func (g *Gateway) dropUpstream(sess *session, addr string) {
	if c, ok := sess.upstream[addr]; ok {
		_ = c.Close()
		delete(sess.upstream, addr)
	}
}
