package cluster

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster/swarm"
	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

const seed = 4242

var start = time.Date(2010, 9, 6, 9, 0, 0, 0, time.UTC)

// startShard runs one regional coordinator whose controller grid is
// centered on its box, like a real deployment would.
func startShard(t *testing.T, box geo.BoundingBox, addr string) (*coordinator.Server, *core.Controller) {
	t.Helper()
	ctrl := core.NewController(core.DefaultConfig(), box.Center())
	s, err := coordinator.Serve(ctrl, addr, coordinator.Options{
		Networks:     []radio.NetworkID{radio.NetB},
		Metrics:      []trace.Metric{trace.MetricUDPKbps},
		TaskInterval: time.Minute,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, ctrl
}

// crossTrack parks the client at a until mid, then teleports it to b —
// the simplest campaign spanning two regions.
type crossTrack struct {
	a, b geo.Point
	mid  time.Time
}

func (tr crossTrack) Pose(t time.Time) mobility.Pose {
	p := tr.a
	if !t.Before(tr.mid) {
		p = tr.b
	}
	return mobility.Pose{Loc: p, Active: true}
}

// testCluster is two regional shards (Madison + New Brunswick) behind one
// gateway with an ops plane and a shared telemetry registry.
type testCluster struct {
	gw       *Gateway
	reg      *telemetry.Registry
	madison  *coordinator.Server
	nj       *coordinator.Server
	madCtrl  *core.Controller
	njCtrl   *core.Controller
	registry *Registry
}

func startCluster(t *testing.T, opts GatewayOptions) *testCluster {
	t.Helper()
	tc := &testCluster{reg: telemetry.NewRegistry()}
	tc.madison, tc.madCtrl = startShard(t, geo.Madison(), "127.0.0.1:0")
	tc.nj, tc.njCtrl = startShard(t, geo.NewBrunswickArea(), "127.0.0.1:0")
	var err error
	tc.registry, err = NewRegistry([]ShardConfig{
		{Name: "madison", Addr: tc.madison.Addr(), Box: geo.Madison()},
		{Name: "new-jersey", Addr: tc.nj.Addr(), Box: geo.NewBrunswickArea()},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.TaskInterval = time.Minute
	opts.Telemetry = tc.reg
	opts.OpsAddr = "127.0.0.1:0"
	opts.Seed = seed
	tc.gw, err = ServeGateway(tc.registry, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tc.gw.Close() })
	return tc
}

// shardCounter reads a per-shard counter from the cluster's registry
// (re-registration with an identical schema fetches the existing family).
func (tc *testCluster) shardCounter(name, shard string) float64 {
	return tc.reg.Counter(name, "", "shard").With(shard).Value()
}

// counter reads an unlabeled gateway counter.
func (tc *testCluster) counter(name string) float64 {
	return tc.reg.Counter(name, "").With().Value()
}

func httpStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// regionSamples sums the ingested samples of a controller and checks every
// touched zone's center lies inside box — proof the sample landed on the
// shard that owns it.
func regionSamples(t *testing.T, ctrl *core.Controller, box geo.BoundingBox, name string) int64 {
	t.Helper()
	var total int64
	for _, key := range ctrl.Keys() {
		center := ctrl.Grid().Center(key.Zone)
		if !box.Contains(center) {
			t.Errorf("shard %s holds zone %s centered at %s, outside its box", name, key.Zone, center)
		}
		total += ctrl.SampleCount(key)
	}
	return total
}

// TestAgentCampaignSpansTwoShards is the acceptance proof: an unmodified
// agent.Agent pointed at the gateway completes a campaign whose track
// crosses from Wisconsin to New Jersey, and every sample lands in the
// controller of the shard owning its location.
func TestAgentCampaignSpansTwoShards(t *testing.T) {
	tc := startCluster(t, GatewayOptions{})

	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB}, radio.RegionWI, seed, geo.Madison().Center())
	a := &agent.Agent{
		ID:          "cross-country",
		DeviceClass: "laptop",
		Track: crossTrack{
			a:   geo.MadisonStaticSites()[0],
			b:   geo.NJStaticSites()[0], // New Brunswick: inside the NJ shard's box
			mid: start.Add(time.Hour),
		},
		Env:      env,
		Networks: []radio.NetworkID{radio.NetB},
		Seed:     seed,
		Grid:     geo.GridForZoneRadius(geo.Madison().Center(), 250),
	}

	st, err := a.Run(tc.gw.Addr(), start, 2*time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 120 {
		t.Fatalf("rounds %d, want 120", st.Rounds)
	}
	if st.SamplesSent == 0 {
		t.Fatal("campaign produced no samples")
	}

	madison := regionSamples(t, tc.madCtrl, geo.Madison(), "madison")
	nj := regionSamples(t, tc.njCtrl, geo.NewBrunswickArea(), "new-jersey")
	if madison == 0 || nj == 0 {
		t.Fatalf("samples per shard: madison=%d nj=%d, want both > 0", madison, nj)
	}
	if madison+nj != int64(st.SamplesSent) {
		t.Fatalf("shards hold %d samples, agent sent %d", madison+nj, st.SamplesSent)
	}

	if r := tc.shardCounter("wiscape_gateway_routed_total", "madison"); r == 0 {
		t.Fatal("no requests routed to madison")
	}
	if r := tc.shardCounter("wiscape_gateway_routed_total", "new-jersey"); r == 0 {
		t.Fatal("no requests routed to new-jersey")
	}
	if f := tc.shardCounter("wiscape_gateway_failed_total", "madison") +
		tc.shardCounter("wiscape_gateway_failed_total", "new-jersey"); f != 0 {
		t.Fatalf("healthy cluster recorded %v upstream failures", f)
	}

	// Query fan-out: the bulk zone list merges both shards' published
	// records (each region saw >30 virtual minutes of samples, enough to
	// roll an epoch and publish).
	records, err := agent.QueryZoneList(tc.gw.Addr(), radio.NetB, trace.MetricUDPKbps)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("merged zone list has %d records, want records from both shards", len(records))
	}

	// Point estimate through the gateway answers from the owning shard.
	zone := tc.madCtrl.ZoneOf(geo.MadisonStaticSites()[0])
	est, err := agent.QueryEstimate(tc.gw.Addr(), zone, radio.NetB, trace.MetricUDPKbps)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Found || est.Record.MeanValue <= 0 {
		t.Fatalf("estimate through gateway: %+v", est)
	}
}

// TestGatewayDegradesWhenShardDies kills one region mid-session and checks
// the blast radius: that region's reports fail fast with explicit errors,
// the other region keeps working on the same connection, /readyz and the
// per-shard metrics reflect the loss, and a restarted shard is revived by
// the background recheck.
func TestGatewayDegradesWhenShardDies(t *testing.T) {
	tc := startCluster(t, GatewayOptions{
		FailureThreshold: 1,
		BreakCooldown:    time.Hour, // only the recheck loop may revive it
		RecheckInterval:  50 * time.Millisecond,
		RetryAttempts:    1,
		RequestTimeout:   2 * time.Second,
	})
	madisonLoc := geo.MadisonStaticSites()[0]
	njLoc := geo.NJStaticSites()[0]

	nc, err := net.Dial("tcp", tc.gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(nc)
	defer c.Close()

	zoneReport := func(loc geo.Point, at time.Time) wire.Envelope {
		reply, err := c.Request(wire.Envelope{Type: wire.TypeZoneReport, ZoneReport: &wire.ZoneReport{
			ClientID: "degrade-probe",
			Zone:     geo.GridForZoneRadius(loc, 250).Zone(loc),
			Loc:      loc,
			At:       at,
		}})
		if err != nil {
			t.Fatalf("zone report round trip: %v", err)
		}
		return reply
	}

	if _, err := c.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{ClientID: "degrade-probe"}}); err != nil {
		t.Fatal(err)
	}
	if r := zoneReport(madisonLoc, start); r.Type != wire.TypeTaskList {
		t.Fatalf("madison report before failure: %v", r.Type)
	}
	if r := zoneReport(njLoc, start); r.Type != wire.TypeTaskList {
		t.Fatalf("nj report before failure: %v", r.Type)
	}
	if got := httpStatus(t, "http://"+tc.gw.OpsAddr()+"/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz with both shards up = %d", got)
	}

	njAddr := tc.nj.Addr()
	if err := tc.nj.Close(); err != nil {
		t.Fatal(err)
	}

	// The dead region degrades to an explicit error on the same agent
	// connection...
	r := zoneReport(njLoc, start.Add(time.Minute))
	if r.Type != wire.TypeError || !strings.Contains(r.Error.Message, "new-jersey") {
		t.Fatalf("dead-shard report: %+v", r)
	}
	// ...while the healthy region keeps serving that connection.
	if r := zoneReport(madisonLoc, start.Add(time.Minute)); r.Type != wire.TypeTaskList {
		t.Fatalf("madison report after nj death: %v", r.Type)
	}

	// A mixed upload lands the healthy region's samples and drops the rest.
	mk := func(loc geo.Point) trace.Sample {
		return trace.Sample{Time: start.Add(2 * time.Minute), Loc: loc, Network: radio.NetB,
			Metric: trace.MetricUDPKbps, Value: 900, ClientID: "degrade-probe"}
	}
	ack, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport, SampleReport: &wire.SampleReport{
		ClientID: "degrade-probe",
		Samples:  []trace.Sample{mk(madisonLoc), mk(njLoc), mk(madisonLoc)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != wire.TypeSampleAck || ack.SampleAck.Accepted != 2 {
		t.Fatalf("mixed upload ack: %+v", ack)
	}
	if d := tc.counter("wiscape_gateway_samples_dropped_total"); d != 1 {
		t.Fatalf("dropped samples %v, want 1", d)
	}

	// Health surfaces everywhere it should.
	if f := tc.shardCounter("wiscape_gateway_failed_total", "new-jersey"); f == 0 {
		t.Fatal("per-shard failure counter did not move")
	}
	if h := tc.reg.Gauge("wiscape_gateway_shard_healthy", "", "shard").With("new-jersey").Value(); h != 0 {
		t.Fatalf("shard_healthy{new-jersey} = %v, want 0", h)
	}
	if tc.registry.HealthyCount() != 1 {
		t.Fatalf("healthy count %d, want 1", tc.registry.HealthyCount())
	}
	if got := httpStatus(t, "http://"+tc.gw.OpsAddr()+"/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with a dead shard = %d, want 503 (quorum is majority of 2 = 2)", got)
	}

	// Restart the region on the same address: the background recheck must
	// revive it without any agent traffic.
	var revived *coordinator.Server
	ctrl := core.NewController(core.DefaultConfig(), geo.NewBrunswickArea().Center())
	for i := 0; i < 100; i++ { // the port may linger briefly
		revived, err = coordinator.Serve(ctrl, njAddr, coordinator.Options{
			Networks: []radio.NetworkID{radio.NetB}, Metrics: []trace.Metric{trace.MetricUDPKbps},
			TaskInterval: time.Minute, Seed: seed,
		})
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart shard: %v", err)
	}
	defer revived.Close()

	deadline := time.Now().Add(10 * time.Second)
	for tc.registry.HealthyCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("recheck never revived the restarted shard")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := httpStatus(t, "http://"+tc.gw.OpsAddr()+"/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after revival = %d", got)
	}
	if r := zoneReport(njLoc, start.Add(3*time.Minute)); r.Type != wire.TypeTaskList {
		t.Fatalf("nj report after revival: %v", r.Type)
	}
}

// TestGatewayRejectsUnroutableAndMalformed covers the protocol edges: a
// location outside every shard gets a non-fatal error; a malformed request
// terminates the connection like the coordinator would.
func TestGatewayRejectsUnroutableAndMalformed(t *testing.T) {
	tc := startCluster(t, GatewayOptions{})
	nc, err := net.Dial("tcp", tc.gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(nc)
	defer c.Close()

	reply, err := c.Request(wire.Envelope{Type: wire.TypeZoneReport, ZoneReport: &wire.ZoneReport{
		ClientID: "lost", Loc: geo.Point{Lat: 0, Lon: 0}, At: start,
	}})
	if err != nil || reply.Type != wire.TypeError {
		t.Fatalf("unroutable report: %v %v", reply.Type, err)
	}
	if u := tc.counter("wiscape_gateway_unroutable_total"); u != 1 {
		t.Fatalf("unroutable counter %v", u)
	}
	// The connection survived the unroutable report...
	reply, err = c.Request(wire.Envelope{Type: wire.TypeZoneReport, ZoneReport: &wire.ZoneReport{
		ClientID: "lost", Loc: geo.MadisonStaticSites()[0], At: start,
	}})
	if err != nil || reply.Type != wire.TypeTaskList {
		t.Fatalf("routable report after unroutable: %v %v", reply.Type, err)
	}
	// ...but a malformed one is fatal.
	reply, err = c.Request(wire.Envelope{Type: wire.TypeZoneReport})
	if err != nil || reply.Type != wire.TypeError {
		t.Fatalf("malformed report: %v %v", reply.Type, err)
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("connection must close after a malformed request")
	}
}

// TestSwarmThroughGateway drives the acceptance load: 200 concurrent
// simulated agents split across both regions push through the gateway and
// every sample is accepted by a shard.
func TestSwarmThroughGateway(t *testing.T) {
	if testing.Short() {
		t.Skip("200-agent swarm in -short mode")
	}
	tc := startCluster(t, GatewayOptions{})
	res, err := swarm.Run(tc.gw.Addr(), swarm.Options{
		Agents:          200,
		Rounds:          3,
		SamplesPerRound: 3,
		Regions:         []geo.BoundingBox{geo.Madison(), geo.NewBrunswickArea()},
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AgentsCompleted != 200 || res.Failures != 0 {
		t.Fatalf("swarm: %d/200 agents completed, %d failures", res.AgentsCompleted, res.Failures)
	}
	if want := int64(200 * 3 * 3); res.SamplesAccepted != want {
		t.Fatalf("samples accepted %d, want %d", res.SamplesAccepted, want)
	}
	if res.SamplesPerSec() <= 0 || res.P99 <= 0 {
		t.Fatalf("throughput/latency not measured: %+v", res)
	}
	t.Logf("swarm through gateway: %s", res)
	if r := tc.shardCounter("wiscape_gateway_routed_total", "madison"); r == 0 {
		t.Fatal("madison took no swarm traffic")
	}
	if r := tc.shardCounter("wiscape_gateway_routed_total", "new-jersey"); r == 0 {
		t.Fatal("new-jersey took no swarm traffic")
	}
}

// TestGatewayShardsEndpoint smoke-tests the live route table.
func TestGatewayShardsEndpoint(t *testing.T) {
	tc := startCluster(t, GatewayOptions{})
	resp, err := http.Get("http://" + tc.gw.OpsAddr() + "/api/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Gateway string `json:"gateway"`
		Quorum  int    `json:"quorum"`
		Shards  []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Quorum != 2 || len(body.Shards) != 2 || !body.Shards[0].Healthy || !body.Shards[1].Healthy {
		t.Fatalf("shard table: %+v", body)
	}
}
