# WiScape build/test entry points. `make ci` is what every change must
# pass: vet + build + the full test suite under the race detector (the
# store/coordinator shutdown paths are race-sensitive).
GO ?= go

.PHONY: all vet build test race ci bench bench-ingest

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: vet build race

# All benchmarks, repo-wide, without re-running unit tests alongside them.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Just the persistence-overhead trajectory (in-memory vs WAL ingest).
bench-ingest:
	$(GO) test -bench='BenchmarkIngest' -benchmem
