# WiScape build/test entry points. `make ci` is what every change must
# pass: vet + build + the full test suite under the race detector (the
# store/coordinator shutdown paths are race-sensitive).
GO ?= go

.PHONY: all vet build test race ci bench bench-ingest bench-gateway swarm-smoke

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: vet build race

# All benchmarks, repo-wide, without re-running unit tests alongside them.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Just the persistence-overhead trajectory (in-memory vs WAL ingest).
bench-ingest:
	$(GO) test -bench='BenchmarkIngest' -benchmem

# Gateway routing overhead: the same swarm against a bare coordinator and
# behind a single-shard gateway (compare the samples/s metric).
bench-gateway:
	$(GO) test -bench='BenchmarkSwarm' -benchmem -run='^$$' ./internal/cluster/

# Cluster smoke: build both cluster binaries and run the gateway + swarm
# suite (including the 200-agent load test) under the race detector.
swarm-smoke:
	$(GO) build ./cmd/wiscape-gateway ./cmd/wiscape-swarm
	$(GO) test -race -count=1 ./internal/cluster/...
