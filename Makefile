# WiScape build/test entry points. `make ci` is what every change must
# pass: vet + wiscape-lint + build + the full test suite under the race
# detector (the store/coordinator shutdown paths are race-sensitive).
GO ?= go

.PHONY: all vet lint lint-stats lint-baseline lint-sarif bench-lint build test race ci bench bench-ingest bench-gateway bench-sketch swarm-smoke failover-smoke fuzz

all: vet lint build test

vet:
	$(GO) vet ./...

# The repo's own invariant gate: nodeterm, lockio, nilsafemetric,
# wirebound, goleak, errdrop, lockorder, taintalloc, lockguard and
# atomicmix over every module package (see DESIGN.md "Static analysis").
# The checked-in baseline suppresses the accepted debt list; anything new
# fails the build.
lint:
	$(GO) run ./cmd/wiscape-lint -baseline lint-baseline.json ./...

# Same gate with the per-analyzer timing table on stderr.
lint-stats:
	$(GO) run ./cmd/wiscape-lint -stats -baseline lint-baseline.json ./...

# Regenerate the accepted-findings ledger from the current tree. Run this
# deliberately — after fixing a baselined finding (to shrink the ledger)
# or, rarely, to accept a new one with a PR that explains why.
lint-baseline:
	$(GO) run ./cmd/wiscape-lint -write-baseline lint-baseline.json ./...

# SARIF 2.1.0 log of the un-baselined view, for code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/wiscape-lint -sarif ./... > wiscape-lint.sarif || true

# Refresh the checked-in timing ledger: re-records the current suite's
# load/facts/analyze split under the "ten-analyzers" label, leaving the
# historical eight-analyzer snapshot in place for comparison.
bench-lint:
	$(GO) run ./cmd/wiscape-lint -baseline lint-baseline.json -stats -stats-json BENCH_lint.json -stats-label ten-analyzers ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: vet lint build race

# Short-burst coverage-guided fuzz of the wire decoder, the sketch
# serializer, and the replication frame codec (checked-in corpora under
# */testdata/fuzz seed the first two; the frame fuzzer seeds all six
# frame types programmatically).
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzSketchRoundTrip -fuzztime=30s ./internal/sketch
	$(GO) test -fuzz=FuzzFrameRoundTrip -fuzztime=30s ./internal/replication

# All benchmarks, repo-wide, without re-running unit tests alongside them.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Just the persistence-overhead trajectory (in-memory vs WAL ingest).
bench-ingest:
	$(GO) test -bench='BenchmarkIngest' -benchmem

# Gateway routing overhead: the same swarm against a bare coordinator and
# behind a single-shard gateway (compare the samples/s metric).
bench-gateway:
	$(GO) test -bench='BenchmarkSwarm' -benchmem -run='^$$' ./internal/cluster/

# Sketch substrate: ingest/merge/quantile throughput plus the per-zone
# resident-bytes curve (BenchmarkZoneStateFootprint reports bytes/zone —
# it must stay flat as the sample count grows; see BENCH_sketch.json).
bench-sketch:
	$(GO) test -bench='BenchmarkDigest|BenchmarkEpochSketch' -benchmem -run='^$$' ./internal/sketch/
	$(GO) test -bench='BenchmarkZoneStateFootprint' -benchmem -run='^$$' ./internal/core/

# Cluster smoke: build both cluster binaries and run the gateway + swarm
# suite (including the 200-agent load test) under the race detector.
swarm-smoke:
	$(GO) build ./cmd/wiscape-gateway ./cmd/wiscape-swarm
	$(GO) test -race -count=1 ./internal/cluster/...

# Failover smoke: the replication subsystem's unit suite plus the
# kill/promote/rejoin integration proofs (acked-sample preservation, swarm
# chaos hook, degraded readiness), all under the race detector.
failover-smoke:
	$(GO) build ./cmd/wiscape-coordinator ./cmd/wiscape-gateway ./cmd/wiscape-swarm
	$(GO) test -race -count=1 ./internal/replication/
	$(GO) test -race -count=1 -run 'TestFailover|TestSwarmChaos|TestReadyz' ./internal/cluster/
