# WiScape build/test entry points. `make ci` is what every change must
# pass: vet + wiscape-lint + build + the full test suite under the race
# detector (the store/coordinator shutdown paths are race-sensitive).
GO ?= go

.PHONY: all vet lint build test race ci bench bench-ingest bench-gateway swarm-smoke fuzz

all: vet lint build test

vet:
	$(GO) vet ./...

# The repo's own invariant gate: nodeterm, lockio, nilsafemetric and
# wirebound over every module package (see DESIGN.md "Static analysis").
lint:
	$(GO) run ./cmd/wiscape-lint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: vet lint build race

# Short-burst coverage-guided fuzz of the wire decoder (the checked-in
# corpus under internal/wire/testdata/fuzz seeds it).
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire

# All benchmarks, repo-wide, without re-running unit tests alongside them.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Just the persistence-overhead trajectory (in-memory vs WAL ingest).
bench-ingest:
	$(GO) test -bench='BenchmarkIngest' -benchmem

# Gateway routing overhead: the same swarm against a bare coordinator and
# behind a single-shard gateway (compare the samples/s metric).
bench-gateway:
	$(GO) test -bench='BenchmarkSwarm' -benchmem -run='^$$' ./internal/cluster/

# Cluster smoke: build both cluster binaries and run the gateway + swarm
# suite (including the 200-agent load test) under the race detector.
swarm-smoke:
	$(GO) build ./cmd/wiscape-gateway ./cmd/wiscape-swarm
	$(GO) test -race -count=1 ./internal/cluster/...
