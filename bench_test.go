// Package main benchmarks regenerate every table and figure of the paper's
// evaluation via the experiment harness. Each benchmark runs the full
// workload (campaign simulation + analysis) once per iteration and reports
// the measured values alongside the paper's claims on the first iteration.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Campaign datasets are memoized per (seed, scale), so within one bench run
// subsequent iterations re-run only the analysis.
package main

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/store"
	"repro/internal/trace"
)

// benchOpts is the configuration used by the benchmark suite. Scale 0.5
// keeps the whole suite to a few minutes; raise it for sharper statistics.
var benchOpts = experiments.Options{Seed: experiments.DefaultOptions().Seed, Scale: 0.5}

var reportOnce sync.Map

// runExperiment executes one experiment per iteration and logs its report
// once per benchmark.
func runExperiment(b *testing.B, name string, fn func(experiments.Options) experiments.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep := fn(benchOpts)
		if _, logged := reportOnce.LoadOrStore(name, true); !logged {
			b.Logf("\n%s", rep)
		}
	}
}

func BenchmarkFig01CityMap(b *testing.B) {
	runExperiment(b, "fig01", experiments.Fig01CityMap)
}

func BenchmarkFig02SpeedLatency(b *testing.B) {
	runExperiment(b, "fig02", experiments.Fig02SpeedLatency)
}

func BenchmarkFig04ZoneRadius(b *testing.B) {
	runExperiment(b, "fig04", experiments.Fig04ZoneRadius)
}

func BenchmarkFig05SpotCDFs(b *testing.B) {
	runExperiment(b, "fig05", experiments.Fig05SpotCDFs)
}

func BenchmarkFig06AllanDeviation(b *testing.B) {
	runExperiment(b, "fig06", experiments.Fig06AllanDeviation)
}

func BenchmarkFig07NKLD(b *testing.B) {
	runExperiment(b, "fig07", experiments.Fig07NKLD)
}

func BenchmarkFig08ValidationError(b *testing.B) {
	runExperiment(b, "fig08", experiments.Fig08ValidationError)
}

func BenchmarkFig09PingFailures(b *testing.B) {
	runExperiment(b, "fig09", experiments.Fig09PingFailures)
}

func BenchmarkFig10Stadium(b *testing.B) {
	runExperiment(b, "fig10", experiments.Fig10Stadium)
}

func BenchmarkFig11Dominance(b *testing.B) {
	runExperiment(b, "fig11", experiments.Fig11Dominance)
}

func BenchmarkFig12RoadDominance(b *testing.B) {
	runExperiment(b, "fig12", experiments.Fig12RoadDominance)
}

func BenchmarkFig13RoadThroughput(b *testing.B) {
	runExperiment(b, "fig13", experiments.Fig13RoadThroughput)
}

func BenchmarkFig14Applications(b *testing.B) {
	runExperiment(b, "fig14", experiments.Fig14Applications)
}

func BenchmarkTable3StaticProximate(b *testing.B) {
	runExperiment(b, "table3", experiments.Table3StaticProximate)
}

func BenchmarkTable4Timescales(b *testing.B) {
	runExperiment(b, "table4", experiments.Table4Timescales)
}

func BenchmarkTable5PacketCounts(b *testing.B) {
	runExperiment(b, "table5", experiments.Table5PacketCounts)
}

func BenchmarkTable6HTTPLatency(b *testing.B) {
	runExperiment(b, "table6", experiments.Table6HTTPLatency)
}

func BenchmarkBandwidthTools(b *testing.B) {
	runExperiment(b, "bwtools", experiments.BandwidthTools)
}

// Beyond-the-paper extensions and ablations (see EXPERIMENTS.md).

func BenchmarkExt01DeviceHeterogeneity(b *testing.B) {
	runExperiment(b, "ext01", experiments.Ext01DeviceHeterogeneity)
}

func BenchmarkExt02ClientOverhead(b *testing.B) {
	runExperiment(b, "ext02", experiments.Ext02ClientOverhead)
}

func BenchmarkAblationZoneRadius(b *testing.B) {
	runExperiment(b, "abl-radius", experiments.AblationZoneRadius)
}

func BenchmarkAblationSampleBudget(b *testing.B) {
	runExperiment(b, "abl-budget", experiments.AblationSampleBudget)
}

func BenchmarkAblationEpochPolicy(b *testing.B) {
	runExperiment(b, "abl-epoch", experiments.AblationEpochPolicy)
}

func BenchmarkAblationChangeSigmas(b *testing.B) {
	runExperiment(b, "abl-sigma", experiments.AblationChangeSigmas)
}

// Persistence overhead: the coordinator's sample ingest hot path with and
// without the WAL (internal/store), tracking what durability costs per
// sample under each fsync policy.

// ingestBenchSamples builds a deterministic sample mix across a handful of
// zones, minute-spaced so epoch arithmetic stays realistic.
func ingestBenchSamples(n int) []trace.Sample {
	center := geo.Madison().Center()
	t0 := time.Date(2010, 9, 6, 9, 0, 0, 0, time.UTC)
	out := make([]trace.Sample, n)
	for i := range out {
		out[i] = trace.Sample{
			Time:     t0.Add(time.Duration(i) * time.Minute),
			Loc:      center.Offset(float64(i%4)*90, float64(i%8)*400),
			Network:  radio.NetB,
			Metric:   trace.MetricUDPKbps,
			Value:    900 + float64(i%50),
			ClientID: "bench",
		}
	}
	return out
}

func BenchmarkIngestInMemory(b *testing.B) {
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	samples := ingestBenchSamples(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Ingest(samples[i%len(samples)])
	}
}

func benchmarkIngestWAL(b *testing.B, fsync store.FsyncPolicy) {
	st, err := store.Open(b.TempDir(), store.Options{Fsync: fsync})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	samples := ingestBenchSamples(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp := samples[i%len(samples)]
		if _, err := st.Append(smp); err != nil {
			b.Fatal(err)
		}
		ctrl.Ingest(smp)
	}
}

func BenchmarkIngestWALFsyncOff(b *testing.B) {
	benchmarkIngestWAL(b, store.FsyncPolicy{})
}

func BenchmarkIngestWALFsyncEvery100(b *testing.B) {
	benchmarkIngestWAL(b, store.FsyncPolicy{EveryRecords: 100})
}
