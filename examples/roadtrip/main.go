// Roadtrip demonstrates the client-side applications of §4.2 on the 20 km
// road stretch: a multi-sim phone and a MAR gateway download the SURGE web
// pool while driving, with and without WiScape's per-zone estimates.
//
//	go run ./examples/roadtrip [-pages 120]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/apps/mar"
	"repro/internal/apps/multisim"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/webload"
)

func main() {
	nPages := flag.Int("pages", 120, "pages to download from the SURGE pool")
	seed := flag.Uint64("seed", 11, "simulation seed")
	flag.Parse()

	start := radio.Epoch.Add(14 * 24 * time.Hour)

	// Train WiScape on a day of short-segment measurements.
	fmt.Println("collecting a day of WiScape measurements on the road stretch...")
	camp := trace.ShortSegmentCampaign(*seed, start.Add(-36*time.Hour), 24*time.Hour)
	camp.TCPBytes = 1 << 20
	ds := camp.Run()
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	ctrl.IngestDataset(ds)
	fmt.Println(ds.Summary())

	env := radio.NewEnvironment(radio.AllNetworks, radio.RegionWI, *seed, geo.Madison().Center())
	pages := webload.NewSURGEPool(*nPages, *seed).Pages()
	track := mobility.NewCarLoop(geo.ShortSegment(), *seed, 0)
	gap := 15 * time.Second // keep driving between requests

	// Multi-sim phone: one network at a time.
	fmt.Printf("\nmulti-sim phone, %d pages while driving:\n", *nPages)
	probers := mar.NewProbers(env, radio.AllNetworks, *seed+1)
	var bestFixed time.Duration
	for _, n := range radio.AllNetworks {
		r := multisim.RunDownloads(multisim.Fixed{Net: n}, probers, track, start, pages, gap)
		fmt.Printf("  fixed %-5s total %6.1fs\n", n, r.Total.Seconds())
		if bestFixed == 0 || r.Total < bestFixed {
			bestFixed = r.Total
		}
	}
	ws := multisim.RunDownloads(&multisim.WiScape{
		Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks, Fallback: radio.NetB,
	}, probers, track, start, pages, gap)
	fmt.Printf("  WiScape     total %6.1fs  (%.0f%% better than best fixed; used %v)\n",
		ws.Total.Seconds(), (1-float64(ws.Total)/float64(bestFixed))*100, ws.NetworkUse)

	// MAR gateway: all three interfaces in parallel, back-to-back requests.
	fmt.Printf("\nMAR gateway, %d back-to-back pages:\n", *nPages)
	rr := mar.RunDownloads(&mar.RoundRobin{Networks: radio.AllNetworks},
		mar.NewProbers(env, radio.AllNetworks, *seed+2), track, start, pages, 10*time.Millisecond)
	mws := mar.RunDownloads(&mar.WiScapeScheduler{Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks},
		mar.NewProbers(env, radio.AllNetworks, *seed+2), track, start, pages, 10*time.Millisecond)
	fmt.Printf("  round robin makespan %6.1fs (%v)\n", rr.Makespan.Seconds(), rr.NetworkUse)
	fmt.Printf("  WiScape     makespan %6.1fs (%v)  %.0f%% better\n",
		mws.Makespan.Seconds(), mws.NetworkUse, (1-float64(mws.Makespan)/float64(rr.Makespan))*100)
}
