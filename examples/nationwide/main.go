// Nationwide demonstrates the paper's §6 scaling goal — "multiple cities,
// state, or across the whole country" — with a federation of per-region
// controllers: Madison and New Jersey campaigns run simultaneously, samples
// route to the owning region by location, and the operator sees one merged
// alert stream while each region keeps its own zone grid and epochs.
//
//	go run ./examples/nationwide
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
)

func main() {
	const seed = 17
	fed := core.NewMadisonNJFederation(core.DefaultConfig())
	start := radio.Epoch.Add(14 * 24 * time.Hour)

	// Two regional campaigns collected independently (as the paper's WI and
	// NJ deployments were), fed into one federation.
	fmt.Println("running the Madison and New Jersey campaigns...")
	wi := trace.SpotCampaign(radio.RegionWI, seed, start, 12*time.Hour, time.Minute)
	nj := trace.SpotCampaign(radio.RegionNJ, seed, start, 12*time.Hour, time.Minute)

	routed, dropped := 0, 0
	for _, ds := range []*trace.Dataset{wi.Run(), nj.Run()} {
		fmt.Println(" ", ds.Summary())
		for _, s := range ds.Samples {
			if fed.Ingest(s) {
				routed++
			} else {
				dropped++
			}
		}
	}
	fmt.Printf("routed %d samples into %v regions (%d outside all regions)\n\n",
		routed, fed.Regions(), dropped)

	// Location-keyed queries hit the right region transparently.
	queries := []struct {
		label string
		loc   geo.Point
		net   radio.NetworkID
	}{
		{"Madison campus", geo.MadisonStaticSites()[0], radio.NetB},
		{"New Brunswick", geo.NJStaticSites()[0], radio.NetB},
		{"Princeton", geo.NJStaticSites()[1], radio.NetC},
	}
	for _, q := range queries {
		rec, ok := fed.EstimateAt(q.loc, q.net, trace.MetricUDPKbps)
		region, _, _ := fed.RegionFor(q.loc)
		if !ok {
			fmt.Printf("%-16s (%s): no estimate yet\n", q.label, region)
			continue
		}
		fmt.Printf("%-16s (%-10s): %s UDP %6.0f Kbps (±%.0f) from %d samples\n",
			q.label, region, q.net, rec.MeanValue, rec.StdDev, rec.Samples)
	}

	// One merged, region-tagged alert stream for the national operator.
	alerts := fed.Alerts()
	fmt.Printf("\n%d alert(s) across the federation\n", len(alerts))
	for i, a := range alerts {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(alerts)-5)
			break
		}
		fmt.Printf("  [%s] zone %s %s %s: %.0f -> %.0f\n",
			a.Region, a.Key.Zone, a.Key.Net, a.Key.Metric, a.Previous.MeanValue, a.Current.MeanValue)
	}
}
