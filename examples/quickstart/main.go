// Quickstart: the WiScape core in thirty lines.
//
// Build a controller, feed it client-sourced samples from a simulated
// city, and query a zone estimate — the minimal end-to-end use of the
// framework.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func main() {
	const seed = 42

	// The world: NetB's ground truth over Madison.
	field := radio.NewPresetField(radio.NetB, radio.RegionWI, seed, geo.Madison().Center())

	// The framework: a coordinator controller with the paper's parameters
	// (250 m zones, Allan-deviation epochs, 2-sigma change alerts).
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())

	// A client: measures UDP throughput once a minute at a campus corner
	// for six simulated hours and reports each sample.
	prober := simnet.NewProber(field, seed)
	site := geo.MadisonStaticSites()[0]
	start := radio.Epoch.Add(14 * 24 * time.Hour)
	for i := 0; i < 6*60; i++ {
		at := start.Add(time.Duration(i) * time.Minute)
		flow := prober.UDPDownload(site, at, 100, 1200)
		ctrl.Ingest(trace.Sample{
			Time: at, Loc: site, Network: radio.NetB,
			Metric: trace.MetricUDPKbps, Value: flow.ThroughputKbps(),
			ClientID: "quickstart",
		})
	}

	// The payoff: a zone estimate any application can query.
	rec, ok := ctrl.EstimateAt(site, radio.NetB, trace.MetricUDPKbps)
	if !ok {
		fmt.Println("no estimate yet — ingest more samples")
		return
	}
	truth := field.At(site, start.Add(3*time.Hour)).CapacityKbps
	key := core.Key{Zone: ctrl.ZoneOf(site), Net: radio.NetB, Metric: trace.MetricUDPKbps}
	fmt.Printf("zone %s estimate: %.0f Kbps (±%.0f) from %d samples\n",
		rec.Key.Zone, rec.MeanValue, rec.StdDev, rec.Samples)
	fmt.Printf("ground truth right now:   %.0f Kbps\n", truth)
	fmt.Printf("zone epoch (Allan min):   %v\n", ctrl.EpochOf(key))
}
