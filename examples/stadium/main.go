// Stadium demonstrates the operator-alerting use case of §4.1/Figure 10
// end to end over the real client/coordinator protocol: agents monitor the
// Camp Randall area while 80,000 fans arrive for a football game, and the
// coordinator's 2-sigma change detection raises alerts as zone latency
// quadruples.
//
//	go run ./examples/stadium
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/agent"
	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/trace"
)

func main() {
	const seed = 99

	// Game day: kickoff at 13:00 on a simulated Saturday.
	gameStart := radio.Epoch.Add(19*24*time.Hour + 13*time.Hour)
	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB}, radio.RegionWI, seed, geo.Madison().Center())
	env.AddEvent(radio.FootballGame(gameStart))

	// Coordinator with a fast epoch so the demo converges in minutes of
	// simulated time.
	cfg := core.DefaultConfig()
	cfg.DefaultEpoch = 20 * time.Minute
	ctrl := core.NewController(cfg, geo.Madison().Center())
	srv, err := coordinator.Serve(ctrl, "127.0.0.1:0", coordinator.Options{
		Networks:     []radio.NetworkID{radio.NetB},
		Metrics:      []trace.Metric{trace.MetricRTTMs},
		TaskInterval: time.Minute,
		Seed:         seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("coordinator listening on %s\n", srv.Addr())

	// Two agents near the stadium: a static monitor and a bus on the
	// stadium corridor, running from 4 h before kickoff to 2 h after.
	windowStart := gameStart.Add(-4 * time.Hour)
	for i, track := range []mobility.Track{
		mobility.Static{P: geo.CampRandallStadium},
		mobility.NewTransitBus(geo.MadisonBusRoutes(), seed, 5),
	} {
		a := &agent.Agent{
			ID:          fmt.Sprintf("monitor-%d", i),
			DeviceClass: "laptop-usb-modem",
			Track:       track,
			Env:         env,
			Networks:    []radio.NetworkID{radio.NetB},
			Seed:        seed + uint64(i),
			Grid:        ctrl.Grid(),
		}
		st, err := a.Run(srv.Addr(), windowStart, 6*time.Hour, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("agent %s: %d samples uploaded\n", a.ID, st.SamplesSent)
	}

	// The operator's view: alerts raised by the 2-sigma rule.
	stadiumZone := ctrl.ZoneOf(geo.CampRandallStadium)
	alerts := ctrl.Alerts()
	fmt.Printf("\n%d alert(s) raised:\n", len(alerts))
	sawStadium := false
	for _, a := range alerts {
		tag := ""
		if a.Key.Zone == stadiumZone {
			tag = "  <-- stadium zone"
			sawStadium = true
		}
		fmt.Printf("  %s zone %-8s RTT %5.0f ms -> %5.0f ms (%.1f sigma)%s\n",
			a.At.Format("15:04"), a.Key.Zone, a.Previous.MeanValue, a.Current.MeanValue, a.SigmasMoved(), tag)
	}
	if rec, ok := ctrl.Estimate(core.Key{Zone: stadiumZone, Net: radio.NetB, Metric: trace.MetricRTTMs}); ok {
		fmt.Printf("\nstadium zone record now: %.0f ms (game-time congestion captured)\n", rec.MeanValue)
	}
	if !sawStadium {
		fmt.Println("\n(no stadium alert this run — the zone may need more samples; try a different seed)")
	}
}
