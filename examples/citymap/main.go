// Citymap renders a Figure-1-style city-wide throughput map: a Standalone
// bus campaign collects 1 MB TCP downloads across Madison, and the map
// prints one character per zone — throughput level (digits) with '!'
// marking high-variance zones, the "dark dots" an operator would
// investigate.
//
//	go run ./examples/citymap [-days 2]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	days := flag.Float64("days", 2, "simulated campaign days")
	seed := flag.Uint64("seed", 7, "simulation seed")
	flag.Parse()

	start := radio.Epoch.Add(14 * 24 * time.Hour)
	c := trace.StandaloneCampaign(*seed, start, time.Duration(*days*24*float64(time.Hour)))
	c.Interval = time.Minute
	c.Metrics = []trace.Metric{trace.MetricTCPKbps}
	c.TCPBytes = 1 << 20
	fmt.Println("running Standalone campaign (5 transit buses, NetB)...")
	ds := c.Run()
	fmt.Println(ds.Summary())

	grid := geo.GridForZoneRadius(geo.Madison().Center(), 250)
	byZone := trace.ByZone(ds.ByMetric(radio.NetB, trace.MetricTCPKbps), grid)

	type zs struct{ mean, rel float64 }
	zones := map[geo.ZoneID]zs{}
	var lo, hi geo.ZoneID
	first := true
	minV, maxV := 0.0, 0.0
	for z, ss := range byZone {
		if len(ss) < 20 {
			continue
		}
		vals := trace.Values(ss)
		st := zs{mean: stats.Mean(vals), rel: stats.RelStdDev(vals)}
		zones[z] = st
		if first {
			lo, hi = z, z
			minV, maxV = st.mean, st.mean
			first = false
		}
		if z.X < lo.X {
			lo.X = z.X
		}
		if z.Y < lo.Y {
			lo.Y = z.Y
		}
		if z.X > hi.X {
			hi.X = z.X
		}
		if z.Y > hi.Y {
			hi.Y = z.Y
		}
		if st.mean < minV {
			minV = st.mean
		}
		if st.mean > maxV {
			maxV = st.mean
		}
	}
	if first {
		fmt.Println("no zones with enough samples; increase -days")
		return
	}

	fmt.Printf("\nTCP throughput map, %d zones (0=lowest %.0f Kbps, 9=highest %.0f Kbps, !=rel.std>20%%, .=no data)\n\n",
		len(zones), minV, maxV)
	for y := hi.Y; y >= lo.Y; y-- {
		line := "  "
		for x := lo.X; x <= hi.X; x++ {
			st, ok := zones[geo.ZoneID{X: x, Y: y}]
			switch {
			case !ok:
				line += "."
			case st.rel > 0.20:
				line += "!"
			default:
				level := 0
				if maxV > minV {
					level = int(9 * (st.mean - minV) / (maxV - minV))
				}
				line += fmt.Sprintf("%d", level)
			}
		}
		fmt.Println(line)
	}
	fmt.Println("\nEach cell is a 0.2 km² zone (250 m equivalent radius), as in the paper's Figure 1.")
}
