// Command wiscape-dashboard polls a running coordinator over the wire
// protocol and renders the operator console: fleet summary, the per-zone
// record table and the ASCII coverage map, refreshed on an interval.
//
// Usage:
//
//	wiscape-dashboard -addr 127.0.0.1:7411 -network NetB -metric udp_kbps [-once]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
)

// remoteSource adapts the wire bulk query to the dashboard's Source.
type remoteSource struct {
	addr string
}

func (r remoteSource) Records(net radio.NetworkID, m trace.Metric) []core.Record {
	records, err := agent.QueryZoneList(r.addr, net, m)
	if err != nil {
		log.Printf("dashboard: query: %v", err)
		return nil
	}
	return records
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "coordinator address")
	network := flag.String("network", "NetB", "network to display")
	metric := flag.String("metric", "udp_kbps", "metric to display")
	top := flag.Int("top", 20, "zone rows to show")
	interval := flag.Duration("interval", 5*time.Second, "refresh interval")
	zoneRadius := flag.Float64("zone-radius", 250, "zone radius (must match coordinator)")
	once := flag.Bool("once", false, "render once and exit")
	flag.Parse()

	src := remoteSource{addr: *addr}
	net_ := radio.NetworkID(*network)
	m := trace.Metric(*metric)
	grid := geo.GridForZoneRadius(geo.Madison().Center(), *zoneRadius)

	render := func() {
		now := time.Now()
		fmt.Printf("== WiScape operator console — %s — %s/%s ==\n", now.Format(time.RFC3339), net_, m)
		fmt.Printf("summary: %s\n\n", dashboard.Summarize(src, net_, m))
		if err := dashboard.RenderMap(os.Stdout, src, dashboard.MapOptions{
			Network: net_, Metric: m, Grid: grid,
		}); err != nil {
			log.Printf("map: %v", err)
		}
		fmt.Println()
		if err := dashboard.RenderTable(os.Stdout, src, dashboard.TableOptions{
			Network: net_, Metric: m, Top: *top, Stale: time.Hour, Now: now,
		}); err != nil {
			log.Printf("table: %v", err)
		}
		fmt.Println()
	}

	render()
	if *once {
		return
	}
	for range time.Tick(*interval) {
		render()
	}
}
