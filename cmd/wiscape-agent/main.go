// Command wiscape-agent runs a simulated WiScape client against a running
// coordinator: it follows a mobility track over simulated time, reports its
// zone, executes assigned measurement tasks over the synthetic radio
// environment, and uploads samples.
//
// Usage:
//
//	wiscape-agent -addr 127.0.0.1:7411 -id bus-1 -track bus [-days 1] [-seed N]
//	              [-ops-addr 127.0.0.1:9091]
//
// Tracks: "bus" (Madison transit), "intercity" (Madison-Chicago), "car"
// (short road segment loop), "static" (campus site).
//
// With -ops-addr the agent serves its own telemetry (reconnects, rounds,
// tasks executed, samples sent, report failures, wire codec counters) at
// /metrics, plus /healthz and pprof — the client-side half of the
// monitoring story.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/agent"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "coordinator address")
	id := flag.String("id", "agent-1", "client id")
	trackKind := flag.String("track", "bus", "mobility: bus | intercity | car | static")
	days := flag.Float64("days", 1, "simulated duration in days")
	interval := flag.Duration("interval", 5*time.Minute, "zone-report cadence (simulated)")
	seed := flag.Uint64("seed", 1, "environment/measurement seed")
	zoneRadius := flag.Float64("zone-radius", 250, "zone radius (must match coordinator)")
	opsAddr := flag.String("ops-addr", "", "agent ops HTTP plane address (/metrics, /healthz, pprof); empty disables")
	flag.Parse()

	logger := log.New(os.Stderr, "agent: ", log.LstdFlags)

	var met *agent.Metrics
	if *opsAddr != "" {
		reg := telemetry.NewRegistry()
		met = agent.NewMetrics(reg)
		ops, err := telemetry.NewOpsServer(*opsAddr, telemetry.OpsOptions{
			Registry: reg,
			Logf:     func(format string, args ...any) { logger.Printf(format, args...) },
		})
		if err != nil {
			logger.Fatalf("ops plane: %v", err)
		}
		defer ops.Close()
		logger.Printf("ops plane at http://%s", ops.Addr())
	}

	var track mobility.Track
	switch *trackKind {
	case "bus":
		track = mobility.NewTransitBus(geo.MadisonBusRoutes(), *seed, 0)
	case "intercity":
		track = mobility.NewIntercityBus(geo.MadisonChicago(), *seed, 0)
	case "car":
		track = mobility.NewCarLoop(geo.ShortSegment(), *seed, 0)
	case "static":
		track = mobility.Static{P: geo.MadisonStaticSites()[0]}
	default:
		logger.Fatalf("unknown track %q", *trackKind)
	}

	env := radio.NewEnvironment(radio.AllNetworks, radio.RegionWI, *seed, geo.Madison().Center())
	a := &agent.Agent{
		ID:          *id,
		DeviceClass: "laptop-usb-modem",
		Track:       track,
		Env:         env,
		Networks:    radio.AllNetworks,
		Seed:        *seed,
		Grid:        geo.GridForZoneRadius(geo.Madison().Center(), *zoneRadius),
		Telemetry:   met,
	}

	start := radio.Epoch.Add(14 * 24 * time.Hour)
	dur := time.Duration(*days * 24 * float64(time.Hour))
	logger.Printf("running %s over %v of simulated time against %s", *trackKind, dur, *addr)
	st, err := a.Run(*addr, start, dur, *interval)
	if err != nil {
		logger.Fatalf("run: %v", err)
	}
	fmt.Printf("agent %s: %d rounds, %d tasks executed, %d samples sent, %d inactive rounds\n",
		*id, st.Rounds, st.TasksExecuted, st.SamplesSent, st.Skipped)
}
