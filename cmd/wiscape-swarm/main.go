// Command wiscape-swarm load-tests a WiScape serving tier: it drives N
// concurrent simulated agents (real TCP, real protocol, synthetic samples)
// against a coordinator or cluster gateway and reports ingest throughput
// and request-latency tails — the first benchmark of the networking stack
// at scale.
//
// Usage:
//
//	# 500 agents against a single coordinator
//	wiscape-swarm -addr 127.0.0.1:7411 -agents 500
//
//	# 1000 agents across both paper regions through a gateway
//	wiscape-swarm -addr 127.0.0.1:7410 -agents 1000 \
//	  -region 43.015,-89.485,43.1275,-89.331 -region 40.47,-74.475,40.505,-74.425
//
// Regions repeat; agent i reports from region i mod len(regions), so a
// two-region swarm splits evenly across two shards. Against a gateway the
// regions must lie inside the shard bounding boxes — reports from
// locations no shard covers are answered with errors and counted in
// wiscape_gateway_unroutable_total.
//
// The chaos hook drives a failover drill under load: -kill-shard names the
// ops-plane URL of a shard coordinator started with -admin, and -kill-after
// is when (into the run) the swarm suspends it mid-ingest; -restart-after
// resumes it that much later (0 leaves it down). Point the swarm at a
// gateway fronting that shard's primary/replica pair, give the run a
// -round-delay so it spans the kill window, and the report includes the
// observed ingest gap — the wall-clock stretch with no sample acked
// anywhere, covering kill, breaker trip, promotion and catch-up:
//
//	wiscape-swarm -addr 127.0.0.1:7410 -agents 200 -rounds 60 \
//	  -round-delay 100ms -kill-shard http://127.0.0.1:9090 -kill-after 2s \
//	  -restart-after 4s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster/swarm"
	"repro/internal/geo"
)

func parseBox(v string) (geo.BoundingBox, error) {
	fields := strings.Split(v, ",")
	if len(fields) != 4 {
		return geo.BoundingBox{}, fmt.Errorf("want minlat,minlon,maxlat,maxlon, got %q", v)
	}
	var vals [4]float64
	for i, f := range fields {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return geo.BoundingBox{}, err
		}
		vals[i] = x
	}
	return geo.BoundingBox{MinLat: vals[0], MinLon: vals[1], MaxLat: vals[2], MaxLon: vals[3]}, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "target address (coordinator or gateway)")
	agents := flag.Int("agents", 200, "concurrent simulated agents")
	rounds := flag.Int("rounds", 10, "protocol rounds per agent")
	samples := flag.Int("samples", 5, "samples uploaded per round")
	seed := flag.Uint64("seed", 1, "workload seed")
	zoneRadius := flag.Float64("zone-radius", 250, "zone radius (match the target)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline")
	roundDelay := flag.Duration("round-delay", 0, "real-time pause between rounds (spread the run across a chaos window)")
	killShard := flag.String("kill-shard", "", "ops-plane URL of a coordinator (started with -admin) to suspend mid-run")
	killAfter := flag.Duration("kill-after", 2*time.Second, "when into the run -kill-shard fires")
	restartAfter := flag.Duration("restart-after", 0, "resume the killed shard this long after the kill (0 leaves it down)")

	var regions []geo.BoundingBox
	flag.Func("region", "report-location box minlat,minlon,maxlat,maxlon (repeatable; default Madison)", func(v string) error {
		box, err := parseBox(v)
		if err != nil {
			return err
		}
		regions = append(regions, box)
		return nil
	})
	flag.Parse()

	logger := log.New(os.Stderr, "swarm: ", log.LstdFlags)
	logger.Printf("driving %d agents x %d rounds at %s", *agents, *rounds, *addr)
	res, err := swarm.Run(*addr, swarm.Options{
		Agents:          *agents,
		Rounds:          *rounds,
		SamplesPerRound: *samples,
		Regions:         regions,
		Seed:            *seed,
		ZoneRadiusM:     *zoneRadius,
		RequestTimeout:  *timeout,
		RoundDelay:      *roundDelay,
		KillTarget:      *killShard,
		KillAfter:       *killAfter,
		RestartAfter:    *restartAfter,
		Logf:            func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Println(res)
	if res.AgentsCompleted == 0 {
		os.Exit(1)
	}
}
