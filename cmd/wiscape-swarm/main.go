// Command wiscape-swarm load-tests a WiScape serving tier: it drives N
// concurrent simulated agents (real TCP, real protocol, synthetic samples)
// against a coordinator or cluster gateway and reports ingest throughput
// and request-latency tails — the first benchmark of the networking stack
// at scale.
//
// Usage:
//
//	# 500 agents against a single coordinator
//	wiscape-swarm -addr 127.0.0.1:7411 -agents 500
//
//	# 1000 agents across both paper regions through a gateway
//	wiscape-swarm -addr 127.0.0.1:7410 -agents 1000 \
//	  -region 43.015,-89.485,43.1275,-89.331 -region 40.47,-74.475,40.505,-74.425
//
// Regions repeat; agent i reports from region i mod len(regions), so a
// two-region swarm splits evenly across two shards. Against a gateway the
// regions must lie inside the shard bounding boxes — reports from
// locations no shard covers are answered with errors and counted in
// wiscape_gateway_unroutable_total.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster/swarm"
	"repro/internal/geo"
)

func parseBox(v string) (geo.BoundingBox, error) {
	fields := strings.Split(v, ",")
	if len(fields) != 4 {
		return geo.BoundingBox{}, fmt.Errorf("want minlat,minlon,maxlat,maxlon, got %q", v)
	}
	var vals [4]float64
	for i, f := range fields {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return geo.BoundingBox{}, err
		}
		vals[i] = x
	}
	return geo.BoundingBox{MinLat: vals[0], MinLon: vals[1], MaxLat: vals[2], MaxLon: vals[3]}, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "target address (coordinator or gateway)")
	agents := flag.Int("agents", 200, "concurrent simulated agents")
	rounds := flag.Int("rounds", 10, "protocol rounds per agent")
	samples := flag.Int("samples", 5, "samples uploaded per round")
	seed := flag.Uint64("seed", 1, "workload seed")
	zoneRadius := flag.Float64("zone-radius", 250, "zone radius (match the target)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline")

	var regions []geo.BoundingBox
	flag.Func("region", "report-location box minlat,minlon,maxlat,maxlon (repeatable; default Madison)", func(v string) error {
		box, err := parseBox(v)
		if err != nil {
			return err
		}
		regions = append(regions, box)
		return nil
	})
	flag.Parse()

	logger := log.New(os.Stderr, "swarm: ", log.LstdFlags)
	logger.Printf("driving %d agents x %d rounds at %s", *agents, *rounds, *addr)
	res, err := swarm.Run(*addr, swarm.Options{
		Agents:          *agents,
		Rounds:          *rounds,
		SamplesPerRound: *samples,
		Regions:         regions,
		Seed:            *seed,
		ZoneRadiusM:     *zoneRadius,
		RequestTimeout:  *timeout,
	})
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Println(res)
	if res.AgentsCompleted == 0 {
		os.Exit(1)
	}
}
