// Command wiscape-gateway fronts a zone-sharded WiScape cluster: agents
// connect to it exactly as they would to a single coordinator, and the
// gateway routes each report to the regional coordinator shard whose
// bounding box covers the reported location, fans estimate and zone-list
// queries out across shards, and degrades a down region to explicit
// "shard unavailable" errors instead of hung connections.
//
// Shards are declared with repeated -shard flags:
//
//	wiscape-gateway -addr 127.0.0.1:7410 \
//	  -shard 'madison=127.0.0.1:7411=42.99,-89.59,43.20,-89.20' \
//	  -shard 'new-jersey=127.0.0.1:7412=40.30,-74.75,40.55,-74.35' \
//	  -ops-addr 127.0.0.1:9089
//
// The -shard value is name=addr=minlat,minlon,maxlat,maxlon. Two presets
// cover the paper's study areas: -shard 'madison=ADDR' and
// -shard 'new-jersey=ADDR' fill in the Madison and New Brunswick boxes.
// The addr field may be a |-separated endpoint list — primary first, then
// WAL replicas started with -replicate-from:
//
//	-shard 'madison=127.0.0.1:7411|127.0.0.1:7421|127.0.0.1:7431'
//
// When the primary's circuit breaker opens, the gateway promotes the
// freshest caught-up replica and rewrites its live route table; a rejoined
// old primary is demoted and resynced from a fresh snapshot.
//
// With -ops-addr the gateway serves /metrics (per-shard routed, forwarded
// and failed counters, promotion/demotion counters, routing-epoch gauge,
// route-latency histogram, healthy-shard gauge), /healthz, /readyz
// (reflecting shard quorum, degrading — not failing — when a region is
// primary-less but replica-served), pprof, the live route table at
// /api/v1/shards, and the planned-failover lever at
// POST /api/v1/shards/{name}/promote?endpoint=ADDR.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/geo"
)

// parseShard parses name=addr[|replica...][=minlat,minlon,maxlat,maxlon],
// applying the paper-region presets when the box is omitted.
func parseShard(v string) (cluster.ShardConfig, error) {
	parts := strings.SplitN(v, "=", 3)
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return cluster.ShardConfig{}, fmt.Errorf("want name=addr[|replica...][=minlat,minlon,maxlat,maxlon], got %q", v)
	}
	eps := strings.Split(parts[1], "|")
	cfg := cluster.ShardConfig{Name: parts[0], Addr: eps[0], Replicas: eps[1:]}
	if len(parts) == 3 {
		fields := strings.Split(parts[2], ",")
		if len(fields) != 4 {
			return cluster.ShardConfig{}, fmt.Errorf("box %q: want minlat,minlon,maxlat,maxlon", parts[2])
		}
		var vals [4]float64
		for i, f := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return cluster.ShardConfig{}, fmt.Errorf("box %q: %v", parts[2], err)
			}
			vals[i] = x
		}
		cfg.Box = geo.BoundingBox{MinLat: vals[0], MinLon: vals[1], MaxLat: vals[2], MaxLon: vals[3]}
		return cfg, nil
	}
	switch cfg.Name {
	case "madison":
		cfg.Box = geo.Madison()
	case "new-jersey":
		cfg.Box = geo.NewBrunswickArea()
	default:
		return cluster.ShardConfig{}, fmt.Errorf("shard %q has no preset box; give name=addr=minlat,minlon,maxlat,maxlon", cfg.Name)
	}
	return cfg, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7410", "agent-facing listen address")
	name := flag.String("name", "wiscape-gateway", "gateway name (hello_ack server id, Via metadata)")
	taskInterval := flag.Duration("task-interval", 5*time.Minute, "task cadence advertised to agents (match the shards)")
	requestTimeout := flag.Duration("request-timeout", 5*time.Second, "per-shard round-trip bound")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Second, "per-shard dial bound")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "drop agent connections idle this long (0 disables)")
	breakCooldown := flag.Duration("break-cooldown", 5*time.Second, "circuit-breaker open duration after repeated shard failures")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures that trip a shard's breaker")
	recheck := flag.Duration("recheck-interval", 2*time.Second, "background redial cadence for unhealthy shards (negative disables)")
	quorum := flag.Int("ready-quorum", 0, "healthy shards required for /readyz (0 = majority)")
	seed := flag.Uint64("seed", 1, "retry-jitter seed")
	opsAddr := flag.String("ops-addr", "", "ops HTTP plane address (/metrics, /healthz, /readyz, pprof, /api/v1/shards); empty disables")

	var shardCfgs []cluster.ShardConfig
	flag.Func("shard", "shard spec name=addr[=minlat,minlon,maxlat,maxlon] (repeatable)", func(v string) error {
		cfg, err := parseShard(v)
		if err != nil {
			return err
		}
		shardCfgs = append(shardCfgs, cfg)
		return nil
	})
	flag.Parse()

	logger := log.New(os.Stderr, "gateway: ", log.LstdFlags)
	reg, err := cluster.NewRegistry(shardCfgs)
	if err != nil {
		logger.Fatalf("%v (declare shards with -shard)", err)
	}

	g, err := cluster.ServeGateway(reg, *addr, cluster.GatewayOptions{
		Name:             *name,
		TaskInterval:     *taskInterval,
		DialTimeout:      *dialTimeout,
		RequestTimeout:   *requestTimeout,
		IdleTimeout:      *idleTimeout,
		BreakCooldown:    *breakCooldown,
		FailureThreshold: *failThreshold,
		RecheckInterval:  *recheck,
		ReadyQuorum:      *quorum,
		Seed:             *seed,
		OpsAddr:          *opsAddr,
		Logf:             func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		logger.Fatal(err)
	}
	for _, s := range reg.Shards() {
		extra := ""
		if n := len(s.Endpoints()) - 1; n > 0 {
			extra = fmt.Sprintf(" (+%d replicas)", n)
		}
		logger.Printf("shard %s -> %s%s box [%.2f,%.2f]..[%.2f,%.2f]",
			s.Name(), s.Addr(), extra, s.Box().MinLat, s.Box().MinLon, s.Box().MaxLat, s.Box().MaxLon)
	}
	logger.Printf("routing for %d shards on %s", len(reg.Shards()), g.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	logger.Printf("shutting down")
	if err := g.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
}
