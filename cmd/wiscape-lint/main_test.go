package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeTree materializes a fake module: path -> contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for path, contents := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestExpandWalksModuleSkippingNonPackages(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                 "module example\n",
		"a/a.go":                 "package a\n",
		"a/b/b.go":               "package b\n",
		"a/testdata/t.go":        "package t\n",
		"vendor/v/v.go":          "package v\n",
		".hidden/h.go":           "package h\n",
		"_skip/s.go":             "package s\n",
		"empty/readme.txt":       "no go files here\n",
		"onlytests/x_test.go":    "package onlytests\n",
		"deep/nested/pkg/pkg.go": "package pkg\n",
	})
	got, err := expand([]string{"./..."}, dir, "example")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"example/a", "example/a/b", "example/deep/nested/pkg"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("expand = %v, want %v", got, want)
	}
}

func TestExpandEmptyModuleMatchesNothing(t *testing.T) {
	dir := writeTree(t, map[string]string{"go.mod": "module example\n"})
	got, err := expand([]string{"./..."}, dir, "example")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expand of empty module = %v, want none", got)
	}
}

func TestExpandLiteralPathsDeduplicated(t *testing.T) {
	got, err := expand([]string{"example/a", "example/a/", "example/b"}, t.TempDir(), "example")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"example/a", "example/b"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("expand = %v, want %v", got, want)
	}
}

// TestRunNoPackagesExitsTwo covers the empty-match contract end to end:
// a pattern that expands to nothing is a usage error (exit 2), not a
// silently-clean run (exit 0).
func TestRunNoPackagesExitsTwo(t *testing.T) {
	dir := writeTree(t, map[string]string{"go.mod": "module example\n"})
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "matched no packages") {
		t.Fatalf("stderr should name the failure, got: %s", stderr.String())
	}
}

// TestRunParseErrorsExitTwo: a syntax error is reported as a positioned
// diagnostic and forces exit 2 even when no analyzer finds anything.
func TestRunParseErrorsExitTwo(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":      "module example\n\ngo 1.22\n",
		"broken/b.go": "package broken\n\nfunc f() {\n", // unclosed body
	})
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "broken/b.go:") {
		t.Fatalf("parse error should be positioned file:line, got: %s", stderr.String())
	}
}

func TestRunRejectsJSONPlusSARIF(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestRunUnknownAnalyzerExitsTwo: a typo in -only must fail loudly with
// the valid names, not silently run nothing.
func TestRunUnknownAnalyzerExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "lockgaurd"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, `unknown analyzer "lockgaurd"`) {
		t.Fatalf("stderr should name the bad analyzer, got: %s", out)
	}
	for _, name := range []string{"nodeterm", "lockorder", "lockguard", "atomicmix"} {
		if !strings.Contains(out, name) {
			t.Fatalf("stderr should list valid analyzer %s, got: %s", name, out)
		}
	}
}

// TestRunStatsJSONMergesByLabel drives -stats-json end to end on a tiny
// module: a fresh file gains a snapshot, a second label appends, and
// re-recording an existing label replaces it instead of growing the file.
func TestRunStatsJSONMergesByLabel(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc F() int { return 1 }\n",
	})
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	statsPath := filepath.Join(dir, "bench.json")
	read := func() statsFile {
		t.Helper()
		data, err := os.ReadFile(statsPath)
		if err != nil {
			t.Fatal(err)
		}
		var sf statsFile
		if err := json.Unmarshal(data, &sf); err != nil {
			t.Fatalf("stats file is not valid JSON: %v\n%s", err, data)
		}
		return sf
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-stats-json", statsPath, "-stats-label", "before", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	sf := read()
	if len(sf.Snapshots) != 1 || sf.Snapshots[0].Label != "before" {
		t.Fatalf("snapshots after first run = %+v", sf.Snapshots)
	}
	if want := len(analysis.All()); sf.Snapshots[0].Analyzers != want {
		t.Fatalf("recorded %d analyzers, want %d", sf.Snapshots[0].Analyzers, want)
	}
	if len(sf.Snapshots[0].PerAnalyzerMS) != len(analysis.All()) {
		t.Fatalf("per-analyzer map has %d entries, want %d", len(sf.Snapshots[0].PerAnalyzerMS), len(analysis.All()))
	}

	if code := run([]string{"-stats-json", statsPath, "-stats-label", "after", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if sf = read(); len(sf.Snapshots) != 2 {
		t.Fatalf("new label should append, got %+v", sf.Snapshots)
	}

	if code := run([]string{"-only", "nodeterm", "-stats-json", statsPath, "-stats-label", "after", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	sf = read()
	if len(sf.Snapshots) != 2 {
		t.Fatalf("same label should replace, got %+v", sf.Snapshots)
	}
	for _, s := range sf.Snapshots {
		if s.Label == "after" && s.Analyzers != 1 {
			t.Fatalf("replaced snapshot not updated: %+v", s)
		}
	}
}
