package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a fake module: path -> contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for path, contents := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestExpandWalksModuleSkippingNonPackages(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                 "module example\n",
		"a/a.go":                 "package a\n",
		"a/b/b.go":               "package b\n",
		"a/testdata/t.go":        "package t\n",
		"vendor/v/v.go":          "package v\n",
		".hidden/h.go":           "package h\n",
		"_skip/s.go":             "package s\n",
		"empty/readme.txt":       "no go files here\n",
		"onlytests/x_test.go":    "package onlytests\n",
		"deep/nested/pkg/pkg.go": "package pkg\n",
	})
	got, err := expand([]string{"./..."}, dir, "example")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"example/a", "example/a/b", "example/deep/nested/pkg"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("expand = %v, want %v", got, want)
	}
}

func TestExpandEmptyModuleMatchesNothing(t *testing.T) {
	dir := writeTree(t, map[string]string{"go.mod": "module example\n"})
	got, err := expand([]string{"./..."}, dir, "example")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expand of empty module = %v, want none", got)
	}
}

func TestExpandLiteralPathsDeduplicated(t *testing.T) {
	got, err := expand([]string{"example/a", "example/a/", "example/b"}, t.TempDir(), "example")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"example/a", "example/b"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("expand = %v, want %v", got, want)
	}
}

// TestRunNoPackagesExitsTwo covers the empty-match contract end to end:
// a pattern that expands to nothing is a usage error (exit 2), not a
// silently-clean run (exit 0).
func TestRunNoPackagesExitsTwo(t *testing.T) {
	dir := writeTree(t, map[string]string{"go.mod": "module example\n"})
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "matched no packages") {
		t.Fatalf("stderr should name the failure, got: %s", stderr.String())
	}
}

// TestRunParseErrorsExitTwo: a syntax error is reported as a positioned
// diagnostic and forces exit 2 even when no analyzer finds anything.
func TestRunParseErrorsExitTwo(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":      "module example\n\ngo 1.22\n",
		"broken/b.go": "package broken\n\nfunc f() {\n", // unclosed body
	})
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "broken/b.go:") {
		t.Fatalf("parse error should be positioned file:line, got: %s", stderr.String())
	}
}

func TestRunRejectsJSONPlusSARIF(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}
