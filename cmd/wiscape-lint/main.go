// wiscape-lint is the repository's invariant gate: it runs the
// internal/analysis suite (nodeterm, lockio, nilsafemetric, wirebound,
// goleak, errdrop, lockorder, taintalloc, lockguard, atomicmix) over
// module packages and exits non-zero on any finding.
//
// Usage:
//
//	wiscape-lint [-only a,b] [-list] [-json|-sarif] [-baseline FILE] [-write-baseline FILE] [-stats] [-stats-json FILE [-stats-label NAME]] [packages]
//
// Packages are import paths or the pattern ./... (the default), which
// walks every package in the enclosing module. The run is two-pass:
// every requested package is loaded and type-checked first, a facts
// table (may-block, returns-IO-error, shutdown-signal, WaitGroup
// accounting, lock-acquisition order, tainted lengths) is computed over
// the whole load to a fixed point, and only then do the analyzers run —
// so the facts-aware analyzers see through calls into other functions
// and other packages. Loading is sequential; analysis fans out over a
// bounded worker pool (one job per package) with findings merged in
// request order, so output stays byte-identical run to run. -stats
// prints the load/facts/analyze wall times and cumulative per-analyzer
// cost to stderr; -stats-json records the same split as a labeled
// snapshot in a JSON file (replacing any snapshot with the same
// -stats-label, appending otherwise), which is how BENCH_lint.json
// tracks the suite's cost across growth.
//
// Findings are suppressed by a "//lint:ignore <analyzer> <reason>"
// comment on the offending line or the line above; the reason is
// mandatory. -baseline FILE additionally suppresses findings recorded in
// the baseline ledger (matched by analyzer, file and message with an
// occurrence count — not by line), so CI fails only on new findings.
// -write-baseline FILE regenerates that ledger from the current run.
//
// Exit status: 0 clean, 1 findings (after baseline filtering), 2 usage
// errors, load failures, parse errors, or patterns matching no packages.
// Parse errors always force exit 2 and are never baselined: a package
// with a hole in it cannot be trusted to lint clean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/scanner"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/lintout"
	"repro/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wiscape-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this baseline file; report only new ones")
	writeBaseline := fs.String("write-baseline", "", "write a baseline accepting the current findings to this file, then exit")
	stats := fs.Bool("stats", false, "print load/facts/analyze wall time and per-analyzer cost to stderr")
	statsJSON := fs.String("stats-json", "", "record the timing split as a labeled snapshot in this JSON file")
	statsLabel := fs.String("stats-label", "current", "snapshot label for -stats-json (same label replaces, new label appends)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "wiscape-lint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				valid := make([]string, 0, len(analysis.All()))
				for _, known := range analysis.All() {
					valid = append(valid, known.Name)
				}
				fmt.Fprintf(stderr, "wiscape-lint: unknown analyzer %q; valid analyzers: %s\n",
					name, strings.Join(valid, ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	modDir, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(stderr, "wiscape-lint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgPaths, err := expand(patterns, modDir, modPath)
	if err != nil {
		fmt.Fprintf(stderr, "wiscape-lint: %v\n", err)
		return 2
	}
	if len(pkgPaths) == 0 {
		fmt.Fprintf(stderr, "wiscape-lint: patterns %v matched no packages\n", patterns)
		return 2
	}

	// Pass 1: load and type-check every requested package, surfacing
	// parse errors as positioned diagnostics rather than silently
	// analyzing files with holes in them. Loading stays sequential: the
	// loader memoizes recursively and is not safe for concurrent use,
	// and the shared dependency packages mean most of the parse/check
	// work is done once no matter the order.
	ld := load.New()
	ld.ModulePath = modPath
	ld.ModuleDir = modDir

	exit := 0
	loadStart := time.Now()
	var targets []*load.Package
	for _, pkgPath := range pkgPaths {
		p, err := ld.Load(pkgPath)
		if err != nil {
			fmt.Fprintf(stderr, "wiscape-lint: loading %s: %v\n", pkgPath, err)
			exit = 2
			continue
		}
		for _, perr := range p.ParseErrors {
			fmt.Fprintf(stderr, "%s\n", relErr(perr, modDir))
			exit = 2
		}
		targets = append(targets, p)
	}
	loadDur := time.Since(loadStart)

	// Pass 2: compute interprocedural facts over the whole load (the
	// requested packages plus every module-local package they pulled in),
	// then run the analyzers with the facts table attached.
	var infos []*analysis.PackageInfo
	for _, p := range ld.Packages() {
		infos = append(infos, &analysis.PackageInfo{Files: p.Files, Pkg: p.Pkg, Info: p.Info})
	}
	factsStart := time.Now()
	facts := analysis.ComputeFacts(infos)
	factsDur := time.Since(factsStart)

	// Analysis fans out across packages: the Facts table is read-only
	// after ComputeFacts and token.FileSet positions are internally
	// locked, so passes only share immutable state. Findings and errors
	// land in per-target slots and are merged in request order, keeping
	// output deterministic regardless of scheduling.
	analyzeStart := time.Now()
	perTarget := make([][]lintout.Finding, len(targets))
	perTargetErrs := make([][]string, len(targets))
	analyzerNS := make([]int64, len(analyzers))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(targets) {
		workers = len(targets)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				p := targets[ti]
				for ai, a := range analyzers {
					a := a
					pass := &analysis.Pass{
						Analyzer:  a,
						Fset:      ld.Fset,
						Files:     p.Files,
						Pkg:       p.Pkg,
						TypesInfo: p.Info,
						Facts:     facts,
						Report: func(d analysis.Diagnostic) {
							if analysis.Suppressed(ld.Fset, p.Files, a.Name, d.Pos) {
								return
							}
							pos := ld.Fset.Position(d.Pos)
							file, err := filepath.Rel(modDir, pos.Filename)
							if err != nil {
								file = pos.Filename
							}
							perTarget[ti] = append(perTarget[ti], lintout.Finding{
								Analyzer: a.Name,
								File:     filepath.ToSlash(file),
								Line:     pos.Line,
								Col:      pos.Column,
								Message:  d.Message,
							})
						},
					}
					start := time.Now()
					err := a.Run(pass)
					atomic.AddInt64(&analyzerNS[ai], int64(time.Since(start)))
					if err != nil {
						perTargetErrs[ti] = append(perTargetErrs[ti],
							fmt.Sprintf("wiscape-lint: %s on %s: %v", a.Name, p.Path, err))
					}
				}
			}
		}()
	}
	for ti := range targets {
		jobs <- ti
	}
	close(jobs)
	wg.Wait()
	analyzeDur := time.Since(analyzeStart)

	var findings []lintout.Finding
	for ti := range targets {
		findings = append(findings, perTarget[ti]...)
		for _, msg := range perTargetErrs[ti] {
			fmt.Fprintln(stderr, msg)
			exit = 2
		}
	}
	lintout.Sort(findings)

	if *stats {
		fmt.Fprintf(stderr, "wiscape-lint: load %s, facts %s, analyze %s (%d packages, %d workers)\n",
			loadDur.Round(time.Millisecond), factsDur.Round(time.Millisecond),
			analyzeDur.Round(time.Millisecond), len(targets), workers)
		for ai, a := range analyzers {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name,
				time.Duration(atomic.LoadInt64(&analyzerNS[ai])).Round(time.Millisecond))
		}
	}
	if *statsJSON != "" {
		snap := statsSnapshot{
			Label:         *statsLabel,
			Analyzers:     len(analyzers),
			Packages:      len(targets),
			Workers:       workers,
			LoadMS:        loadDur.Milliseconds(),
			FactsMS:       factsDur.Milliseconds(),
			AnalyzeMS:     analyzeDur.Milliseconds(),
			PerAnalyzerMS: make(map[string]int64, len(analyzers)),
		}
		for ai, a := range analyzers {
			snap.PerAnalyzerMS[a.Name] = time.Duration(atomic.LoadInt64(&analyzerNS[ai])).Milliseconds()
		}
		if err := writeStatsJSON(*statsJSON, snap); err != nil {
			fmt.Fprintf(stderr, "wiscape-lint: %v\n", err)
			return 2
		}
	}

	if *writeBaseline != "" {
		b := lintout.NewBaseline(findings)
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(stderr, "wiscape-lint: %v\n", err)
			return 2
		}
		werr := b.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "wiscape-lint: writing baseline: %v\n", werr)
			return 2
		}
		fmt.Fprintf(stderr, "wiscape-lint: wrote baseline %s accepting %d finding(s)\n", *writeBaseline, len(findings))
		return exit
	}

	if *baselinePath != "" {
		b, err := lintout.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "wiscape-lint: %v\n", err)
			return 2
		}
		var suppressed []lintout.Finding
		findings, suppressed = b.Filter(findings)
		if len(suppressed) > 0 {
			fmt.Fprintf(stderr, "wiscape-lint: %d finding(s) suppressed by baseline %s\n", len(suppressed), *baselinePath)
		}
	}

	switch {
	case *jsonOut:
		if err := lintout.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "wiscape-lint: %v\n", err)
			return 2
		}
	case *sarifOut:
		rules := make([]lintout.Rule, 0, len(analyzers))
		for _, a := range analyzers {
			rules = append(rules, lintout.Rule{ID: a.Name, Doc: a.Doc})
		}
		if err := lintout.WriteSARIF(stdout, rules, findings); err != nil {
			fmt.Fprintf(stderr, "wiscape-lint: %v\n", err)
			return 2
		}
	default:
		lintout.WriteText(stdout, findings)
	}

	if len(findings) > 0 && exit == 0 {
		exit = 1
	}
	return exit
}

// statsSnapshot is one labeled timing record in a -stats-json file.
type statsSnapshot struct {
	Label         string           `json:"label"`
	Analyzers     int              `json:"analyzers"`
	Packages      int              `json:"packages"`
	Workers       int              `json:"workers"`
	LoadMS        int64            `json:"load_ms"`
	FactsMS       int64            `json:"facts_ms"`
	AnalyzeMS     int64            `json:"analyze_ms"`
	PerAnalyzerMS map[string]int64 `json:"per_analyzer_ms"`
}

type statsFile struct {
	Snapshots []statsSnapshot `json:"snapshots"`
}

// writeStatsJSON merges snap into the snapshot file at path: a snapshot
// with the same label is replaced in place, a new label appends — so the
// file keeps one entry per tracked configuration ("eight-analyzers",
// "ten-analyzers", …) instead of an unbounded log.
func writeStatsJSON(path string, snap statsSnapshot) error {
	var sf statsFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &sf); err != nil {
			return fmt.Errorf("parsing stats file %s: %w", path, err)
		}
	}
	replaced := false
	for i := range sf.Snapshots {
		if sf.Snapshots[i].Label == snap.Label {
			sf.Snapshots[i] = snap
			replaced = true
		}
	}
	if !replaced {
		sf.Snapshots = append(sf.Snapshots, snap)
	}
	data, err := json.MarshalIndent(&sf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// relErr rewrites a parse error's absolute filename module-relative so
// diagnostics match finding output ("file:line:col: message").
func relErr(err error, modDir string) string {
	if se, ok := err.(*scanner.Error); ok {
		file := se.Pos.Filename
		if rel, rerr := filepath.Rel(modDir, file); rerr == nil {
			file = filepath.ToSlash(rel)
		}
		return fmt.Sprintf("%s:%d:%d: %s", file, se.Pos.Line, se.Pos.Column, se.Msg)
	}
	return err.Error()
}

// expand resolves the given patterns to a sorted list of module package
// import paths. "./..." (or "all") walks the module tree; anything else
// is taken as a literal import path.
func expand(patterns []string, modDir, modPath string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		if pat != "./..." && pat != "all" {
			add(strings.TrimSuffix(pat, "/"))
			continue
		}
		err := filepath.WalkDir(modDir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != modDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if !hasGoFiles(path) {
				return nil
			}
			rel, err := filepath.Rel(modDir, path)
			if err != nil {
				return err
			}
			if rel == "." {
				add(modPath)
			} else {
				add(modPath + "/" + filepath.ToSlash(rel))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go source file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// findModule walks up from the working directory to the enclosing go.mod.
func findModule() (dir, modPath string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
