// wiscape-lint is the repository's invariant gate: it runs the
// internal/analysis suite (nodeterm, lockio, nilsafemetric, wirebound)
// over module packages and exits non-zero on any finding.
//
// Usage:
//
//	wiscape-lint [-only a,b] [-list] [packages]
//
// Packages are import paths or the pattern ./... (the default), which
// walks every package in the enclosing module. Findings are suppressed by
// a "//lint:ignore <analyzer> <reason>" comment on the offending line or
// the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "wiscape-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	modDir, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wiscape-lint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := expand(patterns, modDir, modPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wiscape-lint: %v\n", err)
		os.Exit(2)
	}

	ld := load.New()
	ld.ModulePath = modPath
	ld.ModuleDir = modDir

	type finding struct {
		file      string
		line, col int
		analyzer  string
		msg       string
	}
	var findings []finding
	exit := 0
	for _, pkgPath := range pkgs {
		p, err := ld.Load(pkgPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wiscape-lint: loading %s: %v\n", pkgPath, err)
			exit = 2
			continue
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      ld.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
				Report: func(d analysis.Diagnostic) {
					if analysis.Suppressed(ld.Fset, p.Files, a.Name, d.Pos) {
						return
					}
					pos := ld.Fset.Position(d.Pos)
					file, err := filepath.Rel(modDir, pos.Filename)
					if err != nil {
						file = pos.Filename
					}
					findings = append(findings, finding{file, pos.Line, pos.Column, a.Name, d.Message})
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "wiscape-lint: %s on %s: %v\n", a.Name, pkgPath, err)
				exit = 2
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s (%s)\n", f.file, f.line, f.col, f.msg, f.analyzer)
	}
	if len(findings) > 0 && exit == 0 {
		exit = 1
	}
	os.Exit(exit)
}

// expand resolves the given patterns to a sorted list of module package
// import paths. "./..." (or "all") walks the module tree; anything else
// is taken as a literal import path.
func expand(patterns []string, modDir, modPath string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		if pat != "./..." && pat != "all" {
			add(strings.TrimSuffix(pat, "/"))
			continue
		}
		err := filepath.WalkDir(modDir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != modDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if !hasGoFiles(path) {
				return nil
			}
			rel, err := filepath.Rel(modDir, path)
			if err != nil {
				return err
			}
			if rel == "." {
				add(modPath)
			} else {
				add(modPath + "/" + filepath.ToSlash(rel))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go source file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// findModule walks up from the working directory to the enclosing go.mod.
func findModule() (dir, modPath string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
