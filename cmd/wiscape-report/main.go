// Command wiscape-report runs every experiment in the suite and prints the
// paper-vs-measured report for all tables and figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", experiments.DefaultOptions().Seed, "simulation seed")
	scale := flag.Float64("scale", 1.0, "campaign duration scale (bigger = sharper statistics, slower)")
	only := flag.String("only", "", "run only the experiment with this id (e.g. fig04)")
	extensions := flag.Bool("extensions", false, "also run the beyond-the-paper extensions and ablations")
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Scale: *scale}
	start := time.Now()
	reports := experiments.All(opts)
	if *extensions || (*only != "" && (len(*only) > 3 && ((*only)[:3] == "ext" || (*only)[:3] == "abl"))) {
		reports = append(reports, experiments.Extensions(opts)...)
	}
	for _, rep := range reports {
		if *only != "" && rep.ID != *only {
			continue
		}
		fmt.Println(rep)
	}
	fmt.Fprintf(os.Stderr, "report generated in %v (seed %d, scale %g)\n", time.Since(start).Round(time.Millisecond), *seed, *scale)
}
