// Command wiscape-sim runs one of the paper's measurement campaigns
// (Table 2) over the synthetic radio environment and writes the collected
// dataset as CSV or JSONL — the simulation counterpart of the CRAWDAD trace
// release the paper promises.
//
// Usage:
//
//	wiscape-sim -campaign standalone -days 2 -out standalone.csv
//	wiscape-sim -campaign spot-nj -days 1 -format jsonl -out spot-nj.jsonl
//
// Campaigns: standalone, wirover, spot-wi, spot-nj, proximate-wi,
// proximate-nj, short-segment.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/radio"
	"repro/internal/trace"
)

func main() {
	name := flag.String("campaign", "standalone", "campaign to run")
	days := flag.Float64("days", 1, "simulated duration in days")
	seed := flag.Uint64("seed", 1, "simulation seed")
	format := flag.String("format", "csv", "output format: csv | jsonl")
	out := flag.String("out", "-", "output file (- for stdout)")
	flag.Parse()

	start := radio.Epoch.Add(14 * 24 * time.Hour)
	dur := time.Duration(*days * 24 * float64(time.Hour))

	var c *trace.Campaign
	switch *name {
	case "standalone":
		c = trace.StandaloneCampaign(*seed, start, dur)
	case "wirover":
		c = trace.WiRoverCampaign(*seed, start, dur)
	case "spot-wi":
		c = trace.SpotCampaign(radio.RegionWI, *seed, start, dur, time.Minute)
	case "spot-nj":
		c = trace.SpotCampaign(radio.RegionNJ, *seed, start, dur, time.Minute)
	case "proximate-wi":
		c = trace.ProximateCampaign(radio.RegionWI, *seed, start, dur, time.Minute)
	case "proximate-nj":
		c = trace.ProximateCampaign(radio.RegionNJ, *seed, start, dur, time.Minute)
	case "short-segment":
		c = trace.ShortSegmentCampaign(*seed, start, dur)
	default:
		log.Fatalf("unknown campaign %q", *name)
	}

	t0 := time.Now()
	ds := c.Run()
	fmt.Fprintf(os.Stderr, "%s (simulated %v in %v)\n", ds.Summary(), dur, time.Since(t0).Round(time.Millisecond))

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("create %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = ds.WriteCSV(w)
	case "jsonl":
		err = ds.WriteJSONL(w)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatalf("write: %v", err)
	}
}
