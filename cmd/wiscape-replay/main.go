// Command wiscape-replay feeds a recorded trace (CSV or JSONL, as written
// by wiscape-sim) through a fresh WiScape controller and reports what the
// framework would have concluded: per-zone records, epochs, and the alerts
// the 2-sigma rule would have raised. Optionally persists the resulting
// controller state as a snapshot for a coordinator restart, or — with
// -data — replays the whole campaign into a durable store directory (WAL +
// final checkpoint) so a coordinator can cold-start from a prepared
// dataset.
//
// Usage:
//
//	wiscape-sim -campaign standalone -days 2 -out trace.csv
//	wiscape-replay -in trace.csv [-snapshot state.json] [-top 15]
//	wiscape-replay -in trace.csv -data /var/lib/wiscape
//	wiscape-coordinator -data /var/lib/wiscape
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	in := flag.String("in", "-", "input trace (CSV or JSONL; - for stdin)")
	format := flag.String("format", "", "input format: csv | jsonl (default: by file extension)")
	top := flag.Int("top", 15, "zones to print, by sample count")
	snapshotPath := flag.String("snapshot", "", "write the controller snapshot JSON here")
	dataDir := flag.String("data", "", "replay into this durable store directory (WAL + final checkpoint)")
	dataCkpt := flag.Bool("data-checkpoint", true, "write a final checkpoint into -data (false keeps only the WAL, for exact cold-start replay)")
	zoneRadius := flag.Float64("zone-radius", 250, "zone radius in meters")
	flag.Parse()

	r := os.Stdin
	name := "stdin"
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		//lint:ignore errdrop read-only input; a close error cannot lose data
		defer f.Close()
		r = f
		name = *in
	}
	if *format == "" {
		if strings.HasSuffix(*in, ".jsonl") {
			*format = "jsonl"
		} else {
			*format = "csv"
		}
	}

	var (
		ds  *trace.Dataset
		err error
	)
	switch *format {
	case "csv":
		ds, err = trace.ReadCSV(name, r)
	case "jsonl":
		ds, err = trace.ReadJSONL(name, r)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Println(ds.Summary())

	cfg := core.DefaultConfig()
	cfg.ZoneRadiusM = *zoneRadius
	ctrl := core.NewController(cfg, geo.Madison().Center())
	t0 := time.Now()
	if *dataDir != "" {
		// Mirror the live coordinator's ingest path: journal each sample to
		// the WAL before the controller sees it, so the directory is a
		// faithful cold-start image of this replay.
		st, err := store.Open(*dataDir, store.Options{})
		if err != nil {
			log.Fatalf("open data dir: %v", err)
		}
		sorted := &trace.Dataset{Name: ds.Name, Samples: append([]trace.Sample(nil), ds.Samples...)}
		sorted.SortByTime()
		for _, s := range sorted.Samples {
			if _, err := st.Append(s); err != nil {
				log.Fatalf("journal: %v", err)
			}
			ctrl.Ingest(s)
		}
		if *dataCkpt {
			last := time.Now()
			if sorted.Len() > 0 {
				last = sorted.Samples[sorted.Len()-1].Time
			}
			if err := st.Checkpoint(ctrl.Snapshot(last)); err != nil {
				log.Fatalf("checkpoint: %v", err)
			}
		}
		if err := st.Close(); err != nil {
			log.Fatalf("close data dir: %v", err)
		}
		fmt.Printf("journaled %d samples into %s (final checkpoint: %v)\n",
			sorted.Len(), *dataDir, *dataCkpt)
	} else {
		ctrl.IngestDataset(ds)
	}
	fmt.Printf("replayed in %v\n\n", time.Since(t0).Round(time.Millisecond))

	keys := ctrl.Keys()
	sort.Slice(keys, func(i, j int) bool {
		return ctrl.SampleCount(keys[i]) > ctrl.SampleCount(keys[j])
	})
	n := *top
	if n > len(keys) {
		n = len(keys)
	}
	fmt.Printf("top %d zone statistics by sample volume:\n", n)
	for _, k := range keys[:n] {
		rec, ok := ctrl.Estimate(k)
		if !ok {
			continue
		}
		fmt.Printf("  zone %-9s %-5s %-9s: %8.1f (±%.1f) n=%-6d epoch=%v\n",
			k.Zone, k.Net, k.Metric, rec.MeanValue, rec.StdDev, ctrl.SampleCount(k), ctrl.EpochOf(k))
	}

	alerts := ctrl.Alerts()
	fmt.Printf("\n%d alert(s) during replay", len(alerts))
	if len(alerts) > 0 {
		fmt.Println(":")
		for i, a := range alerts {
			if i >= 10 {
				fmt.Printf("  ... and %d more\n", len(alerts)-10)
				break
			}
			fmt.Printf("  %s zone %-9s %s %s: %.1f -> %.1f\n",
				a.At.Format(time.RFC3339), a.Key.Zone, a.Key.Net, a.Key.Metric,
				a.Previous.MeanValue, a.Current.MeanValue)
		}
	} else {
		fmt.Println()
	}

	if *snapshotPath != "" {
		f, err := os.Create(*snapshotPath)
		if err != nil {
			log.Fatalf("create snapshot: %v", err)
		}
		last := time.Now()
		if ds.Len() > 0 {
			last = ds.Samples[ds.Len()-1].Time
		}
		if err := core.WriteSnapshot(f, ctrl.Snapshot(last)); err != nil {
			log.Fatalf("write snapshot: %v", err)
		}
		// An unchecked close here could report "snapshot written" for a
		// file the kernel never accepted — the exact failure errdrop exists
		// to catch.
		if err := f.Close(); err != nil {
			log.Fatalf("close snapshot: %v", err)
		}
		fmt.Printf("snapshot written to %s\n", *snapshotPath)
	}
}
