// Command wiscape-coordinator runs the WiScape measurement coordinator: a
// TCP server that registers client agents, schedules measurement tasks per
// zone and epoch, ingests reported samples, answers estimate queries, and
// prints operator alerts (2-sigma changes) as they occur.
//
// With -data the coordinator is durable: samples are journaled to a
// write-ahead log before ingestion, published state is checkpointed on a
// timer, and a restart recovers checkpoint + WAL tail automatically.
//
// With -ops-addr the coordinator exposes its operations HTTP plane:
// Prometheus /metrics (plus /metrics.json), /healthz and /readyz probes,
// net/http/pprof under /debug/pprof/, and the read-only zone query API at
// /api/v1/zones and /api/v1/zones/{x:y}.
//
// Usage:
//
//	wiscape-coordinator [-addr 127.0.0.1:7411] [-zone-radius 250] [-seed N]
//	                    [-data DIR] [-checkpoint-interval 1m]
//	                    [-fsync off|always|every=N|interval=DUR]
//	                    [-ops-addr 127.0.0.1:9090] [-idle-timeout 2m]
//	                    [-replication-addr HOST:PORT] [-replicate-from HOST:PORT]
//	                    [-sync-replication] [-force-resync] [-admin]
//
// With -replication-addr the coordinator streams its WAL to attached
// replicas; with -replicate-from it starts as a read-only replica tailing
// the named primary, promotable at runtime by the cluster gateway.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	zoneRadius := flag.Float64("zone-radius", 250, "zone radius in meters")
	seed := flag.Uint64("seed", 1, "scheduling seed")
	taskInterval := flag.Duration("task-interval", 5*time.Minute, "client task cadence")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "drop client connections idle this long (0 disables)")
	dataDir := flag.String("data", "", "durable sample store directory (WAL + checkpoints; recovers on start)")
	ckptInterval := flag.Duration("checkpoint-interval", time.Minute, "checkpoint cadence for -data")
	fsyncMode := flag.String("fsync", "off", "WAL fsync policy: off | always | every=N | interval=DUR")
	opsAddr := flag.String("ops-addr", "", "ops HTTP plane address (/metrics, /healthz, /readyz, pprof, /api/v1/zones); empty disables")
	snapshotPath := flag.String("snapshot", "", "legacy single-file snapshot persistence (superseded by -data)")
	serverID := flag.String("server-id", "wiscape-coordinator", "node name in status replies and replication handshakes")
	replAddr := flag.String("replication-addr", "", "WAL replication listener address (requires -data); empty disables replication")
	replFrom := flag.String("replicate-from", "", "start as a replica tailing this primary replication address")
	forceResync := flag.Bool("force-resync", false, "with -replicate-from: discard local state and bootstrap from a fresh primary snapshot")
	syncRepl := flag.Bool("sync-replication", false, "withhold sample acks until a replica confirms the write (semi-synchronous)")
	syncTimeout := flag.Duration("sync-timeout", 2*time.Second, "bound on the -sync-replication wait")
	admin := flag.Bool("admin", false, "expose chaos admin endpoints (POST /api/v1/admin/{suspend,resume}) on the ops plane")
	flag.Parse()

	logger := log.New(os.Stderr, "coordinator: ", log.LstdFlags)

	fsync, err := store.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		logger.Fatalf("-fsync: %v", err)
	}
	if *dataDir != "" && *snapshotPath != "" {
		logger.Fatalf("-snapshot and -data are mutually exclusive; -data supersedes it")
	}

	cfg := core.DefaultConfig()
	cfg.ZoneRadiusM = *zoneRadius
	ctrl := core.NewController(cfg, geo.Madison().Center())
	if *snapshotPath != "" {
		if f, err := os.Open(*snapshotPath); err == nil {
			snap, err := core.ReadSnapshot(f)
			if cerr := f.Close(); cerr != nil {
				logger.Printf("close snapshot: %v", cerr)
			}
			if err != nil {
				logger.Fatalf("snapshot %s: %v", *snapshotPath, err)
			}
			ctrl = core.Restore(snap)
			logger.Printf("restored %d zone records from %s (taken %s)",
				len(snap.Entries), *snapshotPath, snap.TakenAt.Format(time.RFC3339))
		}
	}
	persist := func() {
		if *snapshotPath == "" {
			return
		}
		tmp := *snapshotPath + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			logger.Printf("snapshot: %v", err)
			return
		}
		err = core.WriteSnapshot(f, ctrl.Snapshot(time.Now()))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, *snapshotPath)
		}
		if err != nil {
			logger.Printf("snapshot: %v", err)
		}
	}

	srv, err := coordinator.Serve(ctrl, *addr, coordinator.Options{
		TaskInterval:       *taskInterval,
		IdleTimeout:        *idleTimeout,
		Seed:               *seed,
		DataDir:            *dataDir,
		CheckpointInterval: *ckptInterval,
		Fsync:              fsync,
		OpsAddr:            *opsAddr,
		ServerID:           *serverID,
		ReplicationAddr:    *replAddr,
		ReplicateFrom:      *replFrom,
		ForceResync:        *forceResync,
		SyncReplication:    *syncRepl,
		SyncTimeout:        *syncTimeout,
		EnableAdmin:        *admin,
		Logf:               coordinator.LogTo(logger),
	})
	if err != nil {
		logger.Fatalf("start: %v", err)
	}
	// With -data, recovery may have replaced the controller.
	ctrl = srv.Controller()
	logger.Printf("listening on %s (zone radius %.0f m)", srv.Addr(), *zoneRadius)
	if *dataDir != "" {
		logger.Printf("durable store at %s (checkpoint every %s, fsync %s)", *dataDir, *ckptInterval, fsync)
	}
	if *opsAddr != "" {
		logger.Printf("ops plane at http://%s (/metrics, /healthz, /readyz, /debug/pprof/, /api/v1/zones)", srv.OpsAddr())
	}
	if ra := srv.ReplicationAddr(); ra != "" {
		logger.Printf("replication listener at %s (role %s)", ra, srv.Role())
	}

	// Drain alerts periodically until interrupted.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	persistTicker := time.NewTicker(30 * time.Second)
	defer persistTicker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, a := range ctrl.Alerts() {
				logger.Printf("ALERT zone %s %s %s: %.1f -> %.1f (%.1f sigma) at %s",
					a.Key.Zone, a.Key.Net, a.Key.Metric,
					a.Previous.MeanValue, a.Current.MeanValue, a.SigmasMoved(), a.At.Format(time.RFC3339))
			}
		case <-persistTicker.C:
			persist()
		case <-stop:
			logger.Printf("shutting down")
			persist()
			if err := srv.Close(); err != nil {
				logger.Printf("close: %v", err)
			}
			return
		}
	}
}
