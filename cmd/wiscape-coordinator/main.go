// Command wiscape-coordinator runs the WiScape measurement coordinator: a
// TCP server that registers client agents, schedules measurement tasks per
// zone and epoch, ingests reported samples, answers estimate queries, and
// prints operator alerts (2-sigma changes) as they occur.
//
// Usage:
//
//	wiscape-coordinator [-addr 127.0.0.1:7411] [-zone-radius 250] [-seed N]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/geo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	zoneRadius := flag.Float64("zone-radius", 250, "zone radius in meters")
	seed := flag.Uint64("seed", 1, "scheduling seed")
	taskInterval := flag.Duration("task-interval", 5*time.Minute, "client task cadence")
	snapshotPath := flag.String("snapshot", "", "restore from and periodically persist controller state here")
	flag.Parse()

	logger := log.New(os.Stderr, "coordinator: ", log.LstdFlags)

	cfg := core.DefaultConfig()
	cfg.ZoneRadiusM = *zoneRadius
	ctrl := core.NewController(cfg, geo.Madison().Center())
	if *snapshotPath != "" {
		if f, err := os.Open(*snapshotPath); err == nil {
			snap, err := core.ReadSnapshot(f)
			f.Close()
			if err != nil {
				logger.Fatalf("snapshot %s: %v", *snapshotPath, err)
			}
			ctrl = core.Restore(snap)
			logger.Printf("restored %d zone records from %s (taken %s)",
				len(snap.Entries), *snapshotPath, snap.TakenAt.Format(time.RFC3339))
		}
	}
	persist := func() {
		if *snapshotPath == "" {
			return
		}
		tmp := *snapshotPath + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			logger.Printf("snapshot: %v", err)
			return
		}
		err = core.WriteSnapshot(f, ctrl.Snapshot(time.Now()))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, *snapshotPath)
		}
		if err != nil {
			logger.Printf("snapshot: %v", err)
		}
	}

	srv, err := coordinator.Serve(ctrl, *addr, coordinator.Options{
		TaskInterval: *taskInterval,
		Seed:         *seed,
		Logf:         coordinator.LogTo(logger),
	})
	if err != nil {
		logger.Fatalf("start: %v", err)
	}
	logger.Printf("listening on %s (zone radius %.0f m)", srv.Addr(), *zoneRadius)

	// Drain alerts periodically until interrupted.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	persistTicker := time.NewTicker(30 * time.Second)
	defer persistTicker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, a := range ctrl.Alerts() {
				logger.Printf("ALERT zone %s %s %s: %.1f -> %.1f (%.1f sigma) at %s",
					a.Key.Zone, a.Key.Net, a.Key.Metric,
					a.Previous.MeanValue, a.Current.MeanValue, a.SigmasMoved(), a.At.Format(time.RFC3339))
			}
		case <-persistTicker.C:
			persist()
		case <-stop:
			logger.Printf("shutting down")
			persist()
			if err := srv.Close(); err != nil {
				logger.Printf("close: %v", err)
			}
			return
		}
	}
}
